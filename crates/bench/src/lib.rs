//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — smaller sweeps for smoke runs (used by `cargo bench`/CI),
//! * `--sizes a,b,c` — override the swept sizes,
//! * `--threads N` — simulate sweep points on `N` worker threads (one
//!   independent `Machine` per point; results are reassembled in input
//!   order, so the printed table is byte-identical to a serial run),
//! * `--sim-threads N` — worker threads *inside* each `Machine` (the
//!   deterministic fork-join executor, DESIGN.md §7; bit-identical output at
//!   every value, composes with `--threads`).
//!
//! Output is a fixed-width table whose rows mirror the corresponding figure
//! in the paper; EXPERIMENTS.md records a captured run next to the paper's
//! reported shape.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ccsvm::{Machine, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Reduced sweep for smoke testing.
    pub quick: bool,
    /// Optional size override.
    pub sizes: Option<Vec<u64>>,
    /// Worker threads for the sweep driver (`--threads N`, default 1).
    pub threads: usize,
    /// Worker threads inside each `Machine` (`--sim-threads N`, default 1).
    pub sim_threads: usize,
}

/// Prints the shared usage message and exits with status 2 (CLI misuse).
fn usage_exit(binary: &str, error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: {binary} [--quick] [--sizes a,b,c] [--threads N] [--sim-threads N]\n\
         \n\
         \x20 --quick           reduced sweep for smoke runs\n\
         \x20 --sizes LIST      comma-separated sweep sizes (positive integers)\n\
         \x20 --threads N       run sweep points on N worker threads (default 1)\n\
         \x20 --sim-threads N   fork-join workers inside each simulated machine\n\
         \x20                   (default 1 = serial reference; output is\n\
         \x20                   bit-identical at every value)"
    );
    std::process::exit(2);
}

impl Opts {
    /// Parses `std::env::args`. On malformed or unknown arguments it prints
    /// a usage message to stderr and exits with a nonzero status instead of
    /// panicking.
    pub fn parse() -> Opts {
        let binary = std::env::args()
            .next()
            .unwrap_or_else(|| "bench".to_string());
        let mut quick = false;
        let mut sizes = None;
        let mut threads = 1usize;
        let mut sim_threads = 1usize;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--sizes" => {
                    let Some(list) = args.next() else {
                        usage_exit(&binary, "--sizes needs a value");
                    };
                    let mut parsed = Vec::new();
                    for s in list.split(',') {
                        match s.trim().parse::<u64>() {
                            Ok(v) if v > 0 => parsed.push(v),
                            _ => usage_exit(
                                &binary,
                                &format!("bad size `{s}` in --sizes (want positive integers)"),
                            ),
                        }
                    }
                    if parsed.is_empty() {
                        usage_exit(&binary, "--sizes list is empty");
                    }
                    sizes = Some(parsed);
                }
                "--threads" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--threads needs a value");
                    };
                    match v.trim().parse::<usize>() {
                        Ok(n) if n > 0 => threads = n,
                        _ => usage_exit(
                            &binary,
                            &format!("bad thread count `{v}` (want a positive integer)"),
                        ),
                    }
                }
                "--sim-threads" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--sim-threads needs a value");
                    };
                    match v.trim().parse::<usize>() {
                        Ok(n) if n > 0 => sim_threads = n,
                        _ => usage_exit(
                            &binary,
                            &format!("bad sim-thread count `{v}` (want a positive integer)"),
                        ),
                    }
                }
                other => usage_exit(&binary, &format!("unknown argument `{other}`")),
            }
        }
        Opts { quick, sizes, threads, sim_threads }
    }

    /// The sweep to use: override > quick > full.
    pub fn pick(&self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.quick => quick.to_vec(),
            None => full.to_vec(),
        }
    }
}

/// Runs `f(0..n)` across `threads` worker threads and returns the results
/// **in input order**.
///
/// Each sweep point gets its own independent `Machine`, so points are
/// embarrassingly parallel; indices are claimed dynamically (an atomic
/// counter) for load balance. With `threads == 1` the closure runs inline on
/// the caller's thread. Because each point is deterministic and results are
/// reassembled by index, the caller's printed table is byte-identical
/// regardless of the thread count.
pub fn sweep<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    assert!(threads >= 1, "need at least one sweep thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("sweep result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result slot")
                .expect("sweep point computed")
        })
        .collect()
}

/// Runs an xthreads program on the CCSVM chip; returns (measured region,
/// DRAM accesses, exit code).
///
/// `sim_threads` selects the intra-run executor (1 = serial reference); the
/// returned numbers are identical at every value.
///
/// # Panics
///
/// Panics on compile errors or guest misbehaviour.
pub fn run_ccsvm(src: &str, sim_threads: usize) -> (Time, u64, u64) {
    let mut cfg = SystemConfig::paper_default();
    cfg.max_sim_time = Time::from_ms(60_000);
    cfg.sim_threads = sim_threads;
    let mut m = Machine::new(cfg, wl::build(src));
    let r = m.run();
    let t = wl::region_time(&r.printed, &r.printed_at, r.time);
    let d = wl::region_dram(&r.printed, &r.dram_at_print, r.dram_accesses);
    (t, d, r.exit_code)
}

/// Formats a time as milliseconds with 3 significant decimals.
pub fn ms(t: Time) -> String {
    format!("{:10.4}", t.as_ms())
}

/// Formats a runtime relative to a baseline (paper figures plot
/// log-scale "runtime relative to the AMD CPU core").
pub fn rel(t: Time, base: Time) -> String {
    format!("{:8.3}", t.as_ps() as f64 / base.as_ps() as f64)
}

/// Prints the standard table header for a figure binary.
pub fn header(title: &str, columns: &[&str]) {
    println!("== {title}");
    println!("{}", columns.join(" | "));
    println!("{}", "-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>()));
}

/// Asserts a qualitative claim, printing rather than panicking so a full
/// sweep always completes; the harness exits nonzero at the end if any
/// claim failed.
pub struct Claims {
    failures: Vec<String>,
}

impl Claims {
    /// Empty set.
    pub fn new() -> Claims {
        Claims { failures: Vec::new() }
    }

    /// Records a claim.
    pub fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            println!("  !! claim failed: {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Prints a summary and exits nonzero on failures.
    pub fn finish(self, figure: &str) {
        if self.failures.is_empty() {
            println!("[{figure}] all qualitative claims hold");
        } else {
            println!("[{figure}] {} claim(s) FAILED", self.failures.len());
            std::process::exit(1);
        }
    }
}

impl Default for Claims {
    fn default() -> Self {
        Claims::new()
    }
}

/// Minimal wall-clock micro-benchmark harness for the `benches/` targets.
///
/// Criterion is deliberately not used: the workspace must build from a cold
/// cargo cache with no network, so the bench targets run on this
/// dependency-free loop instead. Reported numbers are a coarse regression
/// guard (median-free mean over `iters` runs after one warmup), not a
/// statistics suite.
pub fn bench_loop<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {iters:>7} iters  {per:>12} ns/iter");
}
