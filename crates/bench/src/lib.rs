//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — smaller sweeps for smoke runs (used by `cargo bench`/CI),
//! * `--sizes a,b,c` — override the swept sizes,
//! * `--threads N` — simulate sweep points on `N` worker threads (one
//!   independent `Machine` per point; results are reassembled in input
//!   order, so the printed table is byte-identical to a serial run),
//! * `--sim-threads N` — worker threads *inside* each `Machine` (the
//!   deterministic fork-join executor, DESIGN.md §7; bit-identical output at
//!   every value, composes with `--threads`),
//! * `--checkpoint-at NS` — pause each sweep point at simulated time `NS`
//!   nanoseconds, write a snapshot to `snapshots/<label>.ccsnap`, and
//!   continue to completion (the printed table is unchanged),
//! * `--restore-from DIR` — warm-start each sweep point from
//!   `DIR/<label>.ccsnap` when that image exists (falling back to a cold
//!   boot when it does not). Restored runs produce bit-identical reports, so
//!   the table is again unchanged — only wall-time drops.
//!
//! Output is a fixed-width table whose rows mirror the corresponding figure
//! in the paper; EXPERIMENTS.md records a captured run next to the paper's
//! reported shape.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ccsvm::{Machine, ProtocolKind, RunReport, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

/// Directory where `--checkpoint-at` writes its snapshot images.
pub const SNAP_DIR: &str = "snapshots";

/// Typed failure in a bench binary. Every binary's `main` is a thin wrapper
/// around a `Result<(), BenchError>` body handed to [`exit_with`]: CLI
/// misuse exits 2, operational failures (I/O, snapshot/bundle decode, a
/// simulated run producing the wrong answer or aborting) exit 1, and
/// success exits 0 — no panicking `unwrap`/`expect` on the failure paths.
#[derive(Debug)]
pub enum BenchError {
    /// File I/O failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error message.
        err: String,
    },
    /// A snapshot or replay-bundle operation failed.
    Snap(ccsvm::SnapError),
    /// A simulated run misbehaved: wrong answer, abnormal outcome, or a
    /// guest program that failed to compile.
    Run(String),
    /// Command-line misuse.
    Cli(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            BenchError::Snap(e) => write!(f, "snapshot: {e}"),
            BenchError::Run(what) => write!(f, "run failed: {what}"),
            BenchError::Cli(what) => write!(f, "usage: {what}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<ccsvm::SnapError> for BenchError {
    fn from(e: ccsvm::SnapError) -> BenchError {
        BenchError::Snap(e)
    }
}

impl BenchError {
    /// Wraps a file I/O error with the path it concerned.
    pub fn io(path: impl Into<PathBuf>, err: &std::io::Error) -> BenchError {
        BenchError::Io {
            path: path.into(),
            err: err.to_string(),
        }
    }

    /// Process exit status for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            BenchError::Cli(_) => 2,
            _ => 1,
        }
    }
}

/// Standard bench-binary epilogue: prints the error (if any) to stderr and
/// exits with its typed status — 0 on success.
pub fn exit_with(result: Result<(), BenchError>) -> ! {
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// Exit status for a run stopped by SIGINT/SIGTERM after flushing its
/// final checkpoint (POSIX convention: 128 + SIGINT).
pub const EXIT_INTERRUPTED: i32 = 130;

/// Writes a results artifact atomically: same-directory temp file, fsync,
/// rename. A crash mid-write leaves either the old artifact or none — never
/// a torn one. Parent directories are created as needed.
///
/// # Errors
///
/// [`BenchError::Io`] when the directory or file cannot be written.
pub fn write_results_atomic(
    path: impl AsRef<std::path::Path>,
    contents: &str,
) -> Result<(), BenchError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| BenchError::io(dir, &e))?;
        }
    }
    ccsvm_snap::write_file(path, contents.as_bytes()).map_err(BenchError::from)
}

/// Table sink for figure binaries: every [`Out::line`] goes to stdout
/// immediately (so interactive runs look unchanged) *and* into a buffer
/// that [`Out::finish`] writes atomically to the binary's results file.
pub struct Out {
    path: Option<PathBuf>,
    buf: String,
}

impl Out {
    /// A sink writing to `opts.out` if given, else to `default_path`
    /// (pass `None` to keep a binary stdout-only by default).
    pub fn new(opts: &Opts, default_path: Option<&str>) -> Out {
        Out {
            path: opts.out.clone().or_else(|| default_path.map(PathBuf::from)),
            buf: String::new(),
        }
    }

    /// Prints a table line and records it for the results artifact.
    pub fn line(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        println!("{text}");
        self.buf.push_str(text);
        self.buf.push('\n');
    }

    /// Prints the standard table header (see [`header`]) into this sink.
    pub fn header(&mut self, title: &str, columns: &[&str]) {
        self.line(format!("== {title}"));
        self.line(columns.join(" | "));
        self.line("-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>()));
    }

    /// Atomically writes the captured table to the results file, if any.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] when the artifact cannot be written.
    pub fn finish(&self) -> Result<(), BenchError> {
        if let Some(path) = &self.path {
            write_results_atomic(path, &self.buf)?;
            println!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// Checks a simulated result against its oracle, as a typed error rather
/// than an `assert_eq!` panic.
///
/// # Errors
///
/// [`BenchError::Run`] naming `what` when the values differ.
pub fn check_eq(actual: u64, expect: u64, what: impl std::fmt::Display) -> Result<(), BenchError> {
    if actual == expect {
        Ok(())
    } else {
        Err(BenchError::Run(format!(
            "{what}: got {actual}, expected {expect}"
        )))
    }
}

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Reduced sweep for smoke testing.
    pub quick: bool,
    /// Optional size override.
    pub sizes: Option<Vec<u64>>,
    /// Worker threads for the sweep driver (`--threads N`, default 1).
    pub threads: usize,
    /// Worker threads inside each `Machine` (`--sim-threads N`, default 1).
    pub sim_threads: usize,
    /// Simulated time at which to checkpoint each point (`--checkpoint-at`).
    pub checkpoint_at: Option<Time>,
    /// Directory of snapshot images to warm-start from (`--restore-from`).
    pub restore_from: Option<PathBuf>,
    /// Results-file override (`--out FILE`); binaries with a default results
    /// path still write it when this is unset.
    pub out: Option<PathBuf>,
    /// Decoded-superblock cache ablation (`--no-sb-cache` clears it). Pure
    /// host-perf knob: simulated tables are bit-identical either way
    /// (DESIGN §11).
    pub sb_cache: bool,
    /// Coherence protocol for every simulated point (`--protocol`, default
    /// directory). Unlike the host-perf knobs this changes the simulated
    /// machine, so tables differ per protocol (DESIGN §13).
    pub protocol: ProtocolKind,
}

/// Prints the shared usage message and exits with status 2 (CLI misuse).
fn usage_exit(binary: &str, error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: {binary} [--quick] [--sizes a,b,c] [--threads N] [--sim-threads N]\n\
         \x20                [--checkpoint-at NS] [--restore-from DIR]\n\
         \n\
         \x20 --quick           reduced sweep for smoke runs\n\
         \x20 --sizes LIST      comma-separated sweep sizes (positive integers)\n\
         \x20 --threads N       run sweep points on N worker threads (default 1)\n\
         \x20 --sim-threads N   fork-join workers inside each simulated machine\n\
         \x20                   (default 1 = serial reference; output is\n\
         \x20                   bit-identical at every value)\n\
         \x20 --checkpoint-at NS  pause each point at simulated time NS ns,\n\
         \x20                   write {SNAP_DIR}/<label>.ccsnap, then continue\n\
         \x20                   (table output is unchanged)\n\
         \x20 --restore-from DIR  warm-start each point from DIR/<label>.ccsnap\n\
         \x20                   when present (cold boot otherwise); restored\n\
         \x20                   runs are bit-identical, only wall-time drops\n\
         \x20 --out FILE        also write the table to FILE (atomic\n\
         \x20                   temp-file + rename; overrides the binary's\n\
         \x20                   default results path)\n\
         \x20 --no-sb-cache     disable the decoded-superblock cache on CCSVM\n\
         \x20                   cores (host-perf ablation; simulated tables\n\
         \x20                   are bit-identical either way)\n\
         \x20 --protocol NAME   coherence protocol: directory (default),\n\
         \x20                   mesi-snoop, or dragon; changes the simulated\n\
         \x20                   machine, so tables differ per protocol"
    );
    std::process::exit(2);
}

impl Opts {
    /// Parses `std::env::args`. On malformed or unknown arguments it prints
    /// a usage message to stderr and exits with a nonzero status instead of
    /// panicking.
    pub fn parse() -> Opts {
        // Every figure binary parses options first, so this is the one
        // choke point to arm SIGINT/SIGTERM handling: long sweeps stop at
        // the next checkpoint boundary instead of dying mid-run.
        ccsvm_sweepd::sig::install_shutdown_handler();
        let binary = std::env::args()
            .next()
            .unwrap_or_else(|| "bench".to_string());
        let mut quick = false;
        let mut sizes = None;
        let mut threads = 1usize;
        let mut sim_threads = 1usize;
        let mut checkpoint_at = None;
        let mut restore_from = None;
        let mut out = None;
        let mut sb_cache = true;
        let mut protocol = ProtocolKind::Directory;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--no-sb-cache" => sb_cache = false,
                "--sizes" => {
                    let Some(list) = args.next() else {
                        usage_exit(&binary, "--sizes needs a value");
                    };
                    let mut parsed = Vec::new();
                    for s in list.split(',') {
                        match s.trim().parse::<u64>() {
                            Ok(v) if v > 0 => parsed.push(v),
                            _ => usage_exit(
                                &binary,
                                &format!("bad size `{s}` in --sizes (want positive integers)"),
                            ),
                        }
                    }
                    if parsed.is_empty() {
                        usage_exit(&binary, "--sizes list is empty");
                    }
                    sizes = Some(parsed);
                }
                "--threads" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--threads needs a value");
                    };
                    match v.trim().parse::<usize>() {
                        Ok(n) if n > 0 => threads = n,
                        _ => usage_exit(
                            &binary,
                            &format!("bad thread count `{v}` (want a positive integer)"),
                        ),
                    }
                }
                "--sim-threads" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--sim-threads needs a value");
                    };
                    match v.trim().parse::<usize>() {
                        Ok(n) if n > 0 => sim_threads = n,
                        _ => usage_exit(
                            &binary,
                            &format!("bad sim-thread count `{v}` (want a positive integer)"),
                        ),
                    }
                }
                "--checkpoint-at" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--checkpoint-at needs a value (simulated ns)");
                    };
                    match v.trim().parse::<u64>() {
                        Ok(ns) if ns > 0 => checkpoint_at = Some(Time::from_ns(ns)),
                        _ => usage_exit(
                            &binary,
                            &format!("bad checkpoint time `{v}` (want positive nanoseconds)"),
                        ),
                    }
                }
                "--restore-from" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--restore-from needs a directory");
                    };
                    restore_from = Some(PathBuf::from(v));
                }
                "--out" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--out needs a file path");
                    };
                    out = Some(PathBuf::from(v));
                }
                "--protocol" => {
                    let Some(v) = args.next() else {
                        usage_exit(&binary, "--protocol needs a value");
                    };
                    match ProtocolKind::parse(v.trim()) {
                        Some(p) => protocol = p,
                        None => usage_exit(
                            &binary,
                            &format!(
                                "unknown protocol `{v}` (want directory, mesi-snoop, or dragon)"
                            ),
                        ),
                    }
                }
                other => usage_exit(&binary, &format!("unknown argument `{other}`")),
            }
        }
        Opts {
            quick,
            sizes,
            threads,
            sim_threads,
            checkpoint_at,
            restore_from,
            out,
            sb_cache,
            protocol,
        }
    }

    /// The sweep to use: override > quick > full.
    pub fn pick(&self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.quick => quick.to_vec(),
            None => full.to_vec(),
        }
    }
}

/// Runs `f(0..n)` across `threads` worker threads and returns the results
/// **in input order**.
///
/// Each sweep point gets its own independent `Machine`, so points are
/// embarrassingly parallel; indices are claimed dynamically (an atomic
/// counter) for load balance. With `threads == 1` the closure runs inline on
/// the caller's thread. Because each point is deterministic and results are
/// reassembled by index, the caller's printed table is byte-identical
/// regardless of the thread count.
pub fn sweep<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    assert!(threads >= 1, "need at least one sweep thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("sweep result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result slot")
                .expect("sweep point computed")
        })
        .collect()
}

/// Runs an xthreads program on the CCSVM chip; returns (measured region,
/// DRAM accesses, exit code).
///
/// `sim_threads` selects the intra-run executor (1 = serial reference); the
/// returned numbers are identical at every value.
///
/// # Panics
///
/// Panics on compile errors or guest misbehaviour.
pub fn run_ccsvm(src: &str, sim_threads: usize) -> (Time, u64, u64) {
    region_numbers(&run_ccsvm_report(src, sim_threads))
}

/// The standard benchmark configuration (paper defaults, 60 s cap).
pub fn bench_cfg(sim_threads: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.max_sim_time = Time::from_ms(60_000);
    cfg.sim_threads = sim_threads;
    cfg
}

/// A fresh machine under the standard benchmark configuration.
pub fn bench_machine(src: &str, sim_threads: usize) -> Machine {
    Machine::new(bench_cfg(sim_threads), wl::build(src))
}

/// Like [`run_ccsvm`] but returns the full report.
pub fn run_ccsvm_report(src: &str, sim_threads: usize) -> RunReport {
    bench_machine(src, sim_threads).run()
}

/// Extracts the (measured region, DRAM accesses, exit code) triple a figure
/// binary tabulates from a finished run.
pub fn region_numbers(r: &RunReport) -> (Time, u64, u64) {
    let t = wl::region_time(&r.printed, &r.printed_at, r.time);
    let d = wl::region_dram(&r.printed, &r.dram_at_print, r.dram_accesses);
    (t, d, r.exit_code)
}

/// Like [`run_ccsvm`], honouring the harness's `--checkpoint-at` /
/// `--restore-from` options. `label` names this sweep point's snapshot
/// image, `<dir>/<label>.ccsnap`; the simulated results are identical to a
/// cold [`run_ccsvm`] in every mode (checkpointing continues the run,
/// restoring replays it bit-for-bit), so tables never change — only
/// wall-time does.
pub fn run_ccsvm_point(src: &str, opts: &Opts, label: &str) -> (Time, u64, u64) {
    let mut cfg = bench_cfg(opts.sim_threads);
    cfg.sb_cache = opts.sb_cache;
    cfg.protocol = opts.protocol;
    if let Some(dir) = &opts.restore_from {
        let path = dir.join(format!("{label}.ccsnap"));
        if path.exists() {
            match Machine::restore(cfg.clone(), wl::build(src), &path) {
                Ok(mut m) => return region_numbers(&run_to_exit(&mut m, label)),
                Err(e) => eprintln!(
                    "warning: {}: {e}; cold-booting `{label}` instead",
                    path.display()
                ),
            }
        }
    }
    let mut m = Machine::new(cfg, wl::build(src));
    let report = match opts.checkpoint_at {
        Some(at) => match m.run_until(at) {
            // The point finished before the checkpoint cycle: nothing to save.
            Some(r) => r,
            None => {
                if let Err(e) = std::fs::create_dir_all(SNAP_DIR) {
                    eprintln!("warning: cannot create {SNAP_DIR}/: {e}");
                } else {
                    let path = std::path::Path::new(SNAP_DIR).join(format!("{label}.ccsnap"));
                    if let Err(e) = m.checkpoint(&path) {
                        eprintln!("warning: checkpoint {}: {e}", path.display());
                    }
                }
                run_to_exit(&mut m, label)
            }
        },
        None => run_to_exit(&mut m, label),
    };
    region_numbers(&report)
}

/// Runs a machine to completion, polling for SIGINT/SIGTERM every 1 ms of
/// simulated time. On interruption the machine's state is flushed to
/// `snapshots/<label>.interrupted.ccsnap` — resumable via `--restore-from`
/// after renaming — and the process exits with [`EXIT_INTERRUPTED`].
/// Uninterrupted, the report is bit-identical to `Machine::run` (pausing
/// never perturbs the simulation).
pub fn run_to_exit(m: &mut Machine, label: &str) -> RunReport {
    use ccsvm_sweepd::sig;
    match m.run_with_cadence(Time::from_ms(1), |_| !sig::shutdown_requested()) {
        Some(report) => report,
        None => {
            let path = std::path::Path::new(SNAP_DIR).join(format!("{label}.interrupted.ccsnap"));
            let flushed = std::fs::create_dir_all(SNAP_DIR)
                .map_err(|e| ccsvm::SnapError::Io(e.to_string()))
                .and_then(|()| m.checkpoint(&path));
            match flushed {
                Ok(()) => eprintln!(
                    "interrupted at {}; state flushed to {}",
                    m.now(),
                    path.display()
                ),
                Err(e) => eprintln!("interrupted at {}; checkpoint failed: {e}", m.now()),
            }
            std::process::exit(EXIT_INTERRUPTED);
        }
    }
}

/// Advances a fresh machine until the guest prints the measured-region start
/// marker and returns it paused there — the natural cycle to snapshot for
/// warm-start sweeps, with all initialization (guest mallocs, input-filling
/// loops, first-touch page faults) already simulated. Returns `None` if the
/// program finishes without ever pausing past the marker.
pub fn pause_at_region_start(src: &str, sim_threads: usize) -> Option<Machine> {
    let mut m = bench_machine(src, sim_threads);
    let start_marker = wl::MARK_START.to_string();
    let step = Time::from_us(10);
    let mut limit = step;
    loop {
        if m.run_until(limit).is_some() {
            return None; // finished without pausing past the marker
        }
        if m.printed().contains(&start_marker) {
            return Some(m);
        }
        limit = limit.plus(step);
    }
}

/// Formats a time as milliseconds with 3 significant decimals.
pub fn ms(t: Time) -> String {
    format!("{:10.4}", t.as_ms())
}

/// Formats a runtime relative to a baseline (paper figures plot
/// log-scale "runtime relative to the AMD CPU core").
pub fn rel(t: Time, base: Time) -> String {
    format!("{:8.3}", t.as_ps() as f64 / base.as_ps() as f64)
}

/// Prints the standard table header for a figure binary.
pub fn header(title: &str, columns: &[&str]) {
    println!("== {title}");
    println!("{}", columns.join(" | "));
    println!(
        "{}",
        "-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>())
    );
}

/// Asserts a qualitative claim, printing rather than panicking so a full
/// sweep always completes; the harness exits nonzero at the end if any
/// claim failed.
pub struct Claims {
    failures: Vec<String>,
}

impl Claims {
    /// Empty set.
    pub fn new() -> Claims {
        Claims {
            failures: Vec::new(),
        }
    }

    /// Records a claim.
    pub fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            println!("  !! claim failed: {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Prints a summary and exits nonzero on failures.
    pub fn finish(self, figure: &str) {
        if self.failures.is_empty() {
            println!("[{figure}] all qualitative claims hold");
        } else {
            println!("[{figure}] {} claim(s) FAILED", self.failures.len());
            std::process::exit(1);
        }
    }
}

impl Default for Claims {
    fn default() -> Self {
        Claims::new()
    }
}

/// Minimal wall-clock micro-benchmark harness for the `benches/` targets.
///
/// Criterion is deliberately not used: the workspace must build from a cold
/// cargo cache with no network, so the bench targets run on this
/// dependency-free loop instead. Reported numbers are a coarse regression
/// guard (median-free mean over `iters` runs after one warmup), not a
/// statistics suite.
pub fn bench_loop<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {iters:>7} iters  {per:>12} ns/iter");
}
