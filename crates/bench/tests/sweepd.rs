//! End-to-end tests for the `sweepd` orchestrator binary (DESIGN §10).
//!
//! These drive the real executable (`CARGO_BIN_EXE_sweepd`) through the same
//! chaos schedules CI uses and pin the headline invariant: any interleaving
//! of worker SIGKILLs and orchestrator crash-restarts converges to a
//! `manifest.txt` byte-identical to an uninterrupted cold run's.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SWEEPD: &str = env!("CARGO_BIN_EXE_sweepd");

/// Fresh per-test sweep directory under the target-local tmp area.
fn sweep_dir(test: &str, variant: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("sweepd")
        .join(format!("{test}-{variant}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweepd(dir: &Path, extra: &[&str]) -> Output {
    let out = Command::new(SWEEPD)
        .arg("--dir")
        .arg(dir)
        .args(extra)
        .output()
        .expect("spawn sweepd");
    if !out.status.success() && out.status.code() != Some(0) {
        eprintln!(
            "--- sweepd stdout ---\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        eprintln!(
            "--- sweepd stderr ---\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    out
}

fn manifest_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("manifest.txt")).expect("manifest written")
}

/// Parses `max resumed_at N ps` out of the summary line.
fn max_resumed_at(stdout: &str) -> u64 {
    let tail = stdout
        .split("max resumed_at ")
        .nth(1)
        .expect("summary line present");
    tail.split_whitespace()
        .next()
        .expect("value after max resumed_at")
        .parse()
        .expect("numeric resumed_at")
}

/// The base grid used by every convergence test: two vecadd points on the
/// tiny preset with a 2 µs checkpoint cadence (several flushes per run, so
/// a chaos-killed attempt always leaves a resumable checkpoint behind).
const GRID: &[&str] = &[
    "--preset",
    "tiny",
    "--workloads",
    "vecadd",
    "--sizes",
    "16,32",
    "--seeds",
    "1",
    "--ckpt-us",
    "2",
    "--max-attempts",
    "4",
];

#[test]
fn chaos_schedules_converge_to_the_cold_manifest() {
    // Uninterrupted cold run: the reference manifest.
    let cold = sweep_dir("chaos", "cold");
    let out = sweepd(&cold, GRID);
    assert_eq!(out.status.code(), Some(0), "cold run exits 0");
    let reference = manifest_bytes(&cold);

    // ≥3 seeds, each with every non-final worker attempt SIGKILLed and one
    // orchestrator crash-restart in the middle of the sweep.
    for seed in [7u64, 11, 23] {
        let dir = sweep_dir("chaos", &format!("seed{seed}"));
        let chaos = format!("kill=1.0,seed={seed},crashes=1");
        let out = sweepd(&dir, &[GRID, &["--chaos", &chaos]].concat());
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(0),
            "chaos run (seed {seed}) exits 0"
        );
        assert!(
            stderr.contains("chaos crash-restart"),
            "seed {seed}: the armed orchestrator crash must actually fire"
        );
        assert_eq!(
            manifest_bytes(&dir),
            reference,
            "seed {seed}: chaos manifest must be byte-identical to the cold run"
        );
        // Resumed jobs restart from a mid-run checkpoint, not from cycle 0.
        assert!(
            max_resumed_at(&stdout) > 0,
            "seed {seed}: a retried worker must resume past cycle 0 \
             (stdout: {stdout})"
        );
    }
}

#[test]
fn warm_rerun_is_served_from_cache_and_reproduces_the_manifest() {
    let dir = sweep_dir("warm", "run");
    let out = sweepd(&dir, GRID);
    assert_eq!(out.status.code(), Some(0));
    let first = manifest_bytes(&dir);

    let out = sweepd(&dir, GRID);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "warm rerun exits 0");
    assert_eq!(manifest_bytes(&dir), first, "warm manifest identical");
    assert!(
        !stderr.contains("quarantin"),
        "a healthy warm rerun must not quarantine anything: {stderr}"
    );
}

#[test]
fn exhausted_retries_poison_with_bundle_and_partial_manifest() {
    // `wedge` spins forever; under tiny_brief's 100 µs budget every attempt
    // ends in a watchdog deadlock, so the job exhausts its retries.
    let dir = sweep_dir("poison", "wedge");
    let out = sweepd(
        &dir,
        &[
            "--preset",
            "tiny_brief",
            "--workloads",
            "vecadd,wedge",
            "--sizes",
            "16",
            "--seeds",
            "1",
            "--ckpt-us",
            "2",
            "--max-attempts",
            "2",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "a poisoned job is a named degradation, not a sweep failure"
    );
    assert!(
        stdout.contains("1 poisoned: wedge-n16-s1"),
        "summary names the poisoned job: {stdout}"
    );

    let manifest = String::from_utf8(manifest_bytes(&dir)).unwrap();
    let poisoned_row = manifest
        .lines()
        .find(|l| l.contains("status=poisoned"))
        .expect("manifest has a poisoned row");
    assert!(poisoned_row.starts_with("job wedge-n16-s1 "));
    let bundle_rel = poisoned_row
        .split("bundle=")
        .nth(1)
        .expect("poisoned row names its replay bundle");
    assert!(
        dir.join(bundle_rel).is_file(),
        "replay bundle {bundle_rel} exists on disk"
    );
    assert!(
        manifest.contains("status=done") && manifest.ends_with("total=2 done=1 poisoned=1\n"),
        "healthy job still lands in the partial manifest: {manifest}"
    );
}

#[test]
fn corrupt_journal_is_quarantined_and_the_sweep_rebuilds_from_cache() {
    let dir = sweep_dir("corrupt", "flip");
    let out = sweepd(&dir, GRID);
    assert_eq!(out.status.code(), Some(0));
    let reference = manifest_bytes(&dir);

    // Flip a byte inside the first frame's payload (file header is 20
    // bytes, frame header 12): the frame checksum now fails, which must
    // surface as a typed recovery (quarantine + cache rebuild), never a
    // panic or a non-zero exit.
    let jpath = dir.join("sweep.journal");
    let mut bytes = std::fs::read(&jpath).unwrap();
    bytes[32] ^= 0x41;
    std::fs::write(&jpath, &bytes).unwrap();

    let out = sweepd(&dir, GRID);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "recovery run exits 0: {stderr}");
    assert!(
        stderr.contains("journal unusable"),
        "corruption is reported as a typed recovery: {stderr}"
    );
    assert!(
        dir.join("sweep.journal.corrupt").is_file(),
        "the bad journal is quarantined, not deleted"
    );
    assert_eq!(
        manifest_bytes(&dir),
        reference,
        "cache-rebuilt manifest identical to the original"
    );
}

#[test]
fn torn_journal_tail_is_dropped_and_the_sweep_resumes() {
    let dir = sweep_dir("corrupt", "torn");
    let out = sweepd(&dir, GRID);
    assert_eq!(out.status.code(), Some(0));
    let reference = manifest_bytes(&dir);

    // Chop mid-frame, as if the machine lost power during an append. The
    // codec drops the torn tail; the journal stays usable (no quarantine).
    let jpath = dir.join("sweep.journal");
    let bytes = std::fs::read(&jpath).unwrap();
    std::fs::write(&jpath, &bytes[..bytes.len() - 3]).unwrap();

    let out = sweepd(&dir, GRID);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "torn-tail rerun exits 0: {stderr}"
    );
    assert!(
        !dir.join("sweep.journal.corrupt").exists(),
        "a torn tail is recoverable in place, not quarantined"
    );
    assert_eq!(manifest_bytes(&dir), reference);
}

/// Property-style sweep over many random kill schedules. `proptest` is not
/// vendorable offline, so schedules are drawn from a hand-rolled seeded
/// generator instead; gated behind `--features slow-tests` because each
/// schedule runs a full multi-process sweep.
#[cfg(feature = "slow-tests")]
#[test]
fn random_kill_schedules_always_converge() {
    let cold = sweep_dir("prop", "cold");
    let out = sweepd(&cold, GRID);
    assert_eq!(out.status.code(), Some(0));
    let reference = manifest_bytes(&cold);

    // SplitMix64, inlined so the test stays dependency-free.
    let mut state = 0x5eed_cafe_f00d_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };

    for case in 0..12u32 {
        let seed = next();
        let kill = 0.25 + (next() % 76) as f64 / 100.0; // 0.25–1.0
        let crashes = 1 + next() % 2; // 1–2 orchestrator crash-restarts
        let dir = sweep_dir("prop", &format!("case{case}"));
        let chaos = format!("kill={kill:.2},seed={seed},crashes={crashes}");
        let out = sweepd(&dir, &[GRID, &["--chaos", &chaos]].concat());
        assert_eq!(
            out.status.code(),
            Some(0),
            "case {case} ({chaos}) exits 0: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            manifest_bytes(&dir),
            reference,
            "case {case} ({chaos}): manifest diverged from the cold run"
        );
    }
}
