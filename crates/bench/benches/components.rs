//! Criterion microbenchmarks of the simulator's substrates: how fast the
//! *simulator itself* runs (events/sec class numbers), useful when tuning
//! the machinery that regenerates the paper's figures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ccsvm_engine::{EventQueue, SplitMix64, Time};
use ccsvm_mem::{CacheArray, CacheConfig};
use ccsvm_noc::{Network, NocConfig, NodeId, Topology};
use ccsvm_vm::{OsLite, Tlb, VirtAddr};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Time::from_ps((i * 2654435761) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("mem/cache_lookup_insert", |b| {
        let mut cache: CacheArray<u8> =
            CacheArray::new(CacheConfig::from_capacity(64 * 1024, 4));
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let block = rng.next_below(4096);
            if cache.lookup(block).is_none() {
                cache.insert(block, 0, [0; 64]);
            }
            black_box(cache.len())
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/torus_send", |b| {
        let topo = Topology::torus(4, 5);
        let mut net = Network::new(topo, NocConfig::paper_default());
        let mut t = Time::ZERO;
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            t += Time::from_ps(100);
            let src = NodeId(rng.next_below(20) as usize);
            let dst = NodeId(rng.next_below(20) as usize);
            black_box(net.send(t, src, dst, 72))
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("vm/tlb_lookup", |b| {
        let mut tlb = Tlb::new(64);
        for i in 0..64u64 {
            tlb.insert(VirtAddr(i * 4096), ccsvm_mem::PhysAddr(i * 4096));
        }
        let mut rng = SplitMix64::new(3);
        b.iter(|| black_box(tlb.lookup(VirtAddr(rng.next_below(80) * 4096))))
    });
}

fn bench_os_map(c: &mut Criterion) {
    c.bench_function("vm/os_map_unmap_page", |b| {
        let mut os = OsLite::new(0x10_0000, 1 << 34);
        let mut va = 0u64;
        b.iter(|| {
            va = (va + 4096) % (1 << 30);
            let n = os.map_page(VirtAddr(va)).len();
            os.unmap_page(VirtAddr(va));
            black_box(n)
        })
    });
}

fn bench_assembler(c: &mut Criterion) {
    let src = "main:
        li r8, 0
        li r9, 1
    loop:
        add r8, r8, r9
        add r9, r9, 1
        li r10, 100
        bge r10, r9, loop
        mv r1, r8
        exit
    ";
    c.bench_function("isa/assemble", |b| {
        b.iter(|| black_box(ccsvm_isa::assemble(src).expect("assembles")))
    });
}

fn bench_compiler(c: &mut Criterion) {
    let src = "struct Node { val: int; next: Node*; }
        fn sum(head: Node*) -> int {
            let s = 0;
            while (head != 0 as Node*) { s = s + head->val; head = head->next; }
            return s;
        }
        _CPU_ fn main() -> int { return sum(0 as Node*); }";
    c.bench_function("xcc/compile", |b| {
        b.iter(|| black_box(ccsvm_xcc::compile_to_program(src).expect("compiles")))
    });
}

fn bench_interp(c: &mut Criterion) {
    let p = ccsvm_xcc::compile_to_program(
        "_CPU_ fn main() -> int {
            let s = 0;
            for (let i = 0; i < 1000; i = i + 1) { s = s + i * 3; }
            return s;
        }",
    )
    .expect("compiles");
    c.bench_function("isa/interp_1k_loop", |b| {
        b.iter(|| {
            let mut mem = ccsvm_isa::FlatMem::new();
            let mut os = ccsvm_isa::FuncOs::new();
            let mut t = ccsvm_isa::Interp::new(p.entry("__start"), 0);
            t.run(&p, &mut mem, &mut os, 10_000_000).expect("runs");
            black_box(t.regs[1])
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_array,
    bench_noc,
    bench_tlb,
    bench_os_map,
    bench_assembler,
    bench_compiler,
    bench_interp,
);
criterion_main!(benches);
