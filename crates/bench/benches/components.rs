//! Microbenchmarks of the simulator's substrates: how fast the *simulator
//! itself* runs (events/sec class numbers), useful when tuning the machinery
//! that regenerates the paper's figures.
//!
//! Runs on the dependency-free [`ccsvm_bench::bench_loop`] harness so the
//! workspace builds offline; invoke with `cargo bench --bench components`.

use std::hint::black_box;

use ccsvm_bench::bench_loop;
use ccsvm_engine::{EventQueue, SplitMix64, Time};
use ccsvm_mem::{CacheArray, CacheConfig};
use ccsvm_noc::{Network, NocConfig, NodeId, Topology};
use ccsvm_vm::{OsLite, Tlb, VirtAddr};

fn bench_event_queue() {
    bench_loop("engine/event_queue_push_pop_1k", 2_000, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(Time::from_ps((i * 2654435761) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
}

fn bench_cache_array() {
    let mut cache: CacheArray<u8> = CacheArray::new(CacheConfig::from_capacity(64 * 1024, 4));
    let mut rng = SplitMix64::new(1);
    bench_loop("mem/cache_lookup_insert", 2_000_000, || {
        let block = rng.next_below(4096);
        if cache.lookup(block).is_none() {
            cache.insert(block, 0, [0; 64]);
        }
        cache.len()
    });
}

fn bench_noc() {
    let topo = Topology::torus(4, 5);
    let mut net = Network::new(topo, NocConfig::paper_default());
    let mut t = Time::ZERO;
    let mut rng = SplitMix64::new(2);
    bench_loop("noc/torus_send", 2_000_000, || {
        t += Time::from_ps(100);
        let src = NodeId(rng.next_below(20) as usize);
        let dst = NodeId(rng.next_below(20) as usize);
        net.send(t, src, dst, 72)
    });
}

fn bench_tlb() {
    let mut tlb = Tlb::new(64);
    for i in 0..64u64 {
        tlb.insert(VirtAddr(i * 4096), ccsvm_mem::PhysAddr(i * 4096));
    }
    let mut rng = SplitMix64::new(3);
    bench_loop("vm/tlb_lookup", 5_000_000, || {
        black_box(tlb.lookup(VirtAddr(rng.next_below(80) * 4096)))
    });
}

fn bench_os_map() {
    let mut os = OsLite::new(0x10_0000, 1 << 34);
    let mut va = 0u64;
    bench_loop("vm/os_map_unmap_page", 500_000, || {
        va = (va + 4096) % (1 << 30);
        let n = os.map_page(VirtAddr(va)).len();
        os.unmap_page(VirtAddr(va));
        n
    });
}

fn bench_assembler() {
    let src = "main:
        li r8, 0
        li r9, 1
    loop:
        add r8, r8, r9
        add r9, r9, 1
        li r10, 100
        bge r10, r9, loop
        mv r1, r8
        exit
    ";
    bench_loop("isa/assemble", 20_000, || {
        ccsvm_isa::assemble(src).expect("assembles")
    });
}

fn bench_compiler() {
    let src = "struct Node { val: int; next: Node*; }
        fn sum(head: Node*) -> int {
            let s = 0;
            while (head != 0 as Node*) { s = s + head->val; head = head->next; }
            return s;
        }
        _CPU_ fn main() -> int { return sum(0 as Node*); }";
    bench_loop("xcc/compile", 5_000, || {
        ccsvm_xcc::compile_to_program(src).expect("compiles")
    });
}

fn bench_interp() {
    let p = ccsvm_xcc::compile_to_program(
        "_CPU_ fn main() -> int {
            let s = 0;
            for (let i = 0; i < 1000; i = i + 1) { s = s + i * 3; }
            return s;
        }",
    )
    .expect("compiles");
    bench_loop("isa/interp_1k_loop", 2_000, || {
        let mut mem = ccsvm_isa::FlatMem::new();
        let mut os = ccsvm_isa::FuncOs::new();
        let mut t = ccsvm_isa::Interp::new(p.entry("__start"), 0);
        t.run(&p, &mut mem, &mut os, 10_000_000).expect("runs");
        t.regs[1]
    });
}

fn main() {
    bench_event_queue();
    bench_cache_array();
    bench_noc();
    bench_tlb();
    bench_os_map();
    bench_assembler();
    bench_compiler();
    bench_interp();
}
