//! End-to-end benchmarks: whole-machine simulations (simulator wall-clock
//! throughput on small paper workloads). The full figure sweeps live in the
//! `fig5`–`fig9` binaries; these keep a regression guard on the simulator's
//! own speed.
//!
//! Runs on the dependency-free [`ccsvm_bench::bench_loop`] harness so the
//! workspace builds offline; invoke with `cargo bench --bench end_to_end`.

use ccsvm::{Machine, SystemConfig};
use ccsvm_bench::bench_loop;
use ccsvm_workloads as wl;

fn bench_machine_boot() {
    let prog = wl::build("_CPU_ fn main() -> int { return 42; }");
    bench_loop("machine/boot_trivial_tiny", 50, || {
        let mut m = Machine::new(SystemConfig::tiny(), prog.clone());
        m.run().exit_code
    });
}

fn bench_vecadd_tiny() {
    let p = wl::vecadd::VecaddParams { n: 32, seed: 1 };
    let prog = wl::build(&wl::vecadd::xthreads_source(&p));
    bench_loop("machine/vecadd32_tiny_chip", 20, || {
        let mut m = Machine::new(SystemConfig::tiny(), prog.clone());
        m.run().exit_code
    });
}

fn bench_matmul_paper_chip() {
    let p = wl::matmul::MatmulParams::new(8, 1);
    let prog = wl::build(&wl::matmul::xthreads_source(&p));
    bench_loop("machine/matmul8_paper_chip", 5, || {
        let mut m = Machine::new(SystemConfig::paper_default(), prog.clone());
        m.run().exit_code
    });
}

fn main() {
    bench_machine_boot();
    bench_vecadd_tiny();
    bench_matmul_paper_chip();
}
