//! End-to-end criterion benchmarks: whole-machine simulations (simulator
//! wall-clock throughput on small paper workloads). The full figure sweeps
//! live in the `fig5`–`fig9` binaries; these keep a regression guard on the
//! simulator's own speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ccsvm::{Machine, SystemConfig};
use ccsvm_workloads as wl;

fn bench_machine_boot(c: &mut Criterion) {
    let prog = wl::build("_CPU_ fn main() -> int { return 42; }");
    c.bench_function("machine/boot_trivial_tiny", |b| {
        b.iter(|| {
            let mut m = Machine::new(SystemConfig::tiny(), prog.clone());
            black_box(m.run().exit_code)
        })
    });
}

fn bench_vecadd_tiny(c: &mut Criterion) {
    let p = wl::vecadd::VecaddParams { n: 32, seed: 1 };
    let prog = wl::build(&wl::vecadd::xthreads_source(&p));
    c.bench_function("machine/vecadd32_tiny_chip", |b| {
        b.iter(|| {
            let mut m = Machine::new(SystemConfig::tiny(), prog.clone());
            black_box(m.run().exit_code)
        })
    });
}

fn bench_matmul_paper_chip(c: &mut Criterion) {
    let p = wl::matmul::MatmulParams::new(8, 1);
    let prog = wl::build(&wl::matmul::xthreads_source(&p));
    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.bench_function("matmul8_paper_chip", |b| {
        b.iter(|| {
            let mut m = Machine::new(SystemConfig::paper_default(), prog.clone());
            black_box(m.run().exit_code)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_machine_boot,
    bench_vecadd_tiny,
    bench_matmul_paper_chip,
);
criterion_main!(benches);
