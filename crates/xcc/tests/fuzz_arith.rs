// Needs `proptest` (network fetch); gated so the workspace tests pass
// from a cold cargo cache. Enable with `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Differential fuzzing of the compiler: generate random integer expression
//! trees, compile them, run them on the reference interpreter, and compare
//! against direct evaluation in Rust. Catches codegen bugs in precedence,
//! register-window management, immediate peepholes, and branch fusion.

use ccsvm_isa::{FlatMem, FuncOs, Interp};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// A generated expression: its XC source and its Rust-evaluated value given
/// variables a, b, c.
#[derive(Clone, Debug)]
struct GenExpr {
    src: String,
    eval: i64,
}

fn leaf(a: i64, b: i64, c: i64) -> impl Strategy<Value = GenExpr> {
    prop_oneof![
        (-100i64..100).prop_map(|v| GenExpr {
            src: format!("{v}"),
            eval: v
        }),
        Just(GenExpr {
            src: "a".into(),
            eval: a
        }),
        Just(GenExpr {
            src: "b".into(),
            eval: b
        }),
        Just(GenExpr {
            src: "c".into(),
            eval: c
        }),
    ]
}

fn expr(a: i64, b: i64, c: i64) -> impl Strategy<Value = GenExpr> {
    leaf(a, b, c).prop_recursive(4, 32, 3, |inner| {
        (inner.clone(), inner.clone(), 0usize..12).prop_map(|(l, r, op)| {
            let (sym, val): (&str, i64) = match op {
                0 => ("+", l.eval.wrapping_add(r.eval)),
                1 => ("-", l.eval.wrapping_sub(r.eval)),
                2 => ("*", l.eval.wrapping_mul(r.eval)),
                3 => (
                    "/",
                    if r.eval == 0 {
                        0
                    } else {
                        l.eval.wrapping_div(r.eval)
                    },
                ),
                4 => (
                    "%",
                    if r.eval == 0 {
                        l.eval
                    } else {
                        l.eval.wrapping_rem(r.eval)
                    },
                ),
                5 => ("&", l.eval & r.eval),
                6 => ("|", l.eval | r.eval),
                7 => ("^", l.eval ^ r.eval),
                8 => ("<", (l.eval < r.eval) as i64),
                9 => ("<=", (l.eval <= r.eval) as i64),
                10 => ("==", (l.eval == r.eval) as i64),
                _ => ("!=", (l.eval != r.eval) as i64),
            };
            GenExpr {
                src: format!("({} {sym} {})", l.src, r.src),
                eval: val,
            }
        })
    })
}

fn run_main(src: &str) -> i64 {
    let p =
        ccsvm_xcc::compile_to_program(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut mem = FlatMem::new();
    let mut os = FuncOs::new();
    let mut t = Interp::new(p.entry("__start"), 0);
    t.run(&p, &mut mem, &mut os, 10_000_000)
        .unwrap_or_else(|e| panic!("trapped: {e:?}\n{src}"));
    t.regs[1] as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Compiled arithmetic equals Rust arithmetic (division-by-zero follows
    /// the ISA's defined semantics, which the generator mirrors).
    #[test]
    fn compiled_expressions_match_rust(
        a in -50i64..50,
        b in -50i64..50,
        c in 1i64..50,
        seed in any::<u64>(),
    ) {
        // Use the seed to pick a deterministic expression via a nested
        // runner (proptest strategies need a test runner to sample).
        let mut runner = proptest::test_runner::TestRunner::new_with_rng(
            proptest::test_runner::Config::default(),
            proptest::test_runner::TestRng::from_seed(
                proptest::test_runner::RngAlgorithm::ChaCha,
                &{
                    let mut s = [0u8; 32];
                    s[..8].copy_from_slice(&seed.to_le_bytes());
                    s
                },
            ),
        );
        let g = expr(a, b, c)
            .new_tree(&mut runner)
            .expect("generate")
            .current();
        let src = format!(
            "_CPU_ fn main() -> int {{
                let a = {a};
                let b = {b};
                let c = {c};
                return {};
            }}",
            g.src
        );
        prop_assert_eq!(run_main(&src), g.eval, "source:\n{}", src);
    }

    /// The same expressions embedded in an if-condition take the right arm
    /// (exercises branch-on-compare fusion and logical lowering).
    #[test]
    fn compiled_conditions_branch_correctly(
        a in -20i64..20,
        b in -20i64..20,
        op in 0usize..6,
    ) {
        let (sym, truth) = match op {
            0 => ("<", a < b),
            1 => ("<=", a <= b),
            2 => (">", a > b),
            3 => (">=", a >= b),
            4 => ("==", a == b),
            _ => ("!=", a != b),
        };
        let src = format!(
            "_CPU_ fn main() -> int {{
                let a = {a};
                let b = {b};
                if (a {sym} b) {{ return 1; }}
                return 0;
            }}"
        );
        prop_assert_eq!(run_main(&src), truth as i64);
    }

    /// Loop-carried accumulation over random bounds.
    #[test]
    fn compiled_loops_accumulate(n in 0i64..200, step in 1i64..7) {
        let src = format!(
            "_CPU_ fn main() -> int {{
                let s = 0;
                for (let i = 0; i < {n}; i = i + {step}) {{ s = s + i; }}
                return s;
            }}"
        );
        let mut expect = 0i64;
        let mut i = 0;
        while i < n {
            expect += i;
            i += step;
        }
        prop_assert_eq!(run_main(&src), expect);
    }
}
