//! End-to-end compiler tests: compile XC, assemble, and execute on the
//! functional reference interpreter, checking architectural results.

use ccsvm_isa::{FlatMem, FuncOs, Interp};
use ccsvm_xcc::compile_to_program;

/// Compiles and runs `main`, returning (r1 at exit, memory, printed output).
fn run(src: &str) -> (u64, FlatMem, Vec<String>) {
    let p = compile_to_program(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut mem = FlatMem::new();
    let mut os = FuncOs::new();
    let mut t = Interp::new(p.entry("__start"), 0);
    t.run(&p, &mut mem, &mut os, 50_000_000)
        .unwrap_or_else(|e| panic!("run trapped: {e:?}"));
    (t.regs[1], mem, os.printed)
}

fn ret(src: &str) -> i64 {
    run(src).0 as i64
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(ret("_CPU_ fn main() -> int { return 2 + 3 * 4; }"), 14);
    assert_eq!(ret("_CPU_ fn main() -> int { return (2 + 3) * 4; }"), 20);
    assert_eq!(ret("_CPU_ fn main() -> int { return 7 / 2 + 7 % 2; }"), 4);
    assert_eq!(ret("_CPU_ fn main() -> int { return -5 + 2; }"), -3);
    assert_eq!(ret("_CPU_ fn main() -> int { return 1 << 10; }"), 1024);
    assert_eq!(ret("_CPU_ fn main() -> int { return 0xFF >> 4; }"), 15);
    assert_eq!(
        ret("_CPU_ fn main() -> int { return (6 & 3) | (8 ^ 12); }"),
        6
    );
}

#[test]
fn comparisons_and_logical() {
    assert_eq!(
        ret("_CPU_ fn main() -> int { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5); }"),
        3
    );
    assert_eq!(
        ret("_CPU_ fn main() -> int { return (1 == 1) + (1 != 1); }"),
        1
    );
    assert_eq!(
        ret("_CPU_ fn main() -> int { return (1 && 0) + (1 || 0) + !0; }"),
        2
    );
    // Short-circuit: the divide-by... deref of null must not run.
    assert_eq!(
        ret("_CPU_ fn main() -> int { let p: int* = 0 as int*; if (0 && *p) { return 1; } return 2; }"),
        2
    );
}

#[test]
fn variables_scopes_shadowing() {
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let x = 1;
                { let x = 2; }
                let y = x;
                return y;
            }"),
        1
    );
}

#[test]
fn while_for_break_continue() {
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let sum = 0;
                for (let i = 1; i <= 10; i = i + 1) { sum = sum + i; }
                return sum;
            }"),
        55
    );
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let i = 0; let n = 0;
                while (1) {
                    i = i + 1;
                    if (i % 2 == 0) { continue; }
                    if (i > 9) { break; }
                    n = n + i;
                }
                return n;
            }"),
        1 + 3 + 5 + 7 + 9
    );
}

#[test]
fn functions_args_recursion() {
    assert_eq!(
        ret(
            "fn add3(a: int, b: int, c: int) -> int { return a + b + c; }
             _CPU_ fn main() -> int { return add3(1, 2, 3) + add3(4, 5, 6); }"
        ),
        21
    );
    assert_eq!(
        ret("fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
             }
             _CPU_ fn main() -> int { return fib(15); }"),
        610
    );
}

#[test]
fn call_preserves_eval_window() {
    // The outer expression holds live temporaries across the inner calls.
    assert_eq!(
        ret("fn id(x: int) -> int { return x; }
             _CPU_ fn main() -> int { return 100 + id(10) * id(2) + id(1); }"),
        121
    );
}

#[test]
fn pointers_malloc_indexing() {
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let a: int* = malloc(10 * 8);
                for (let i = 0; i < 10; i = i + 1) { a[i] = i * i; }
                let s = 0;
                for (let i = 0; i < 10; i = i + 1) { s = s + a[i]; }
                free(a);
                return s;
            }"),
        285
    );
}

#[test]
fn pointer_arithmetic_scales() {
    assert_eq!(
        ret("struct Pair { a: int; b: int; }
             _CPU_ fn main() -> int {
                let p: Pair* = malloc(3 * sizeof(Pair));
                let q = p + 2;            // 2 * 16 bytes
                q->a = 7;
                return (q as int) - (p as int);
             }"),
        32
    );
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let a: int* = malloc(64);
                let b = a + 5;
                return b - a;             // element difference
            }"),
        5
    );
}

#[test]
fn structs_fields_and_linked_list() {
    assert_eq!(
        ret("struct Node { val: int; next: Node*; }
             _CPU_ fn main() -> int {
                let head: Node* = 0 as Node*;
                for (let i = 1; i <= 5; i = i + 1) {
                    let n: Node* = malloc(sizeof(Node));
                    n->val = i;
                    n->next = head;
                    head = n;
                }
                let sum = 0;
                while (head != 0 as Node*) {
                    sum = sum + head->val;
                    head = head->next;
                }
                return sum;
            }"),
        15
    );
}

#[test]
fn address_of_and_deref() {
    assert_eq!(
        ret("fn bump(p: int*) { *p = *p + 1; }
             _CPU_ fn main() -> int {
                let x = 41;
                bump(&x);
                return x;
            }"),
        42
    );
}

#[test]
fn struct_array_indexing_yields_pointers() {
    assert_eq!(
        ret("struct P { x: int; y: int; }
             _CPU_ fn main() -> int {
                let ps: P* = malloc(4 * sizeof(P));
                for (let i = 0; i < 4; i = i + 1) {
                    ps[i]->x = i;
                    ps[i]->y = i * 10;
                }
                return ps[3]->y + ps[2]->x;
            }"),
        32
    );
}

#[test]
fn floats_and_casts() {
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let a = 1.5;
                let b = a * 4.0;          // 6.0
                return b as int;
            }"),
        6
    );
    let (r, _, _) = run("_CPU_ fn main() -> float {
            let n = 2;
            return sqrt((n as float) * 8.0);    // sqrt(16) = 4
        }");
    assert_eq!(f64::from_bits(r), 4.0);
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                if (3.5 > 3.0 && 2.0 <= 2.0 && 1.0 == 1.0 && 1.0 != 2.0) { return 1; }
                return 0;
            }"),
        1
    );
    let (r, _, _) =
        run("_CPU_ fn main() -> float { return fminf(3.0, fmaxf(1.0, 2.0)) + fabsf(-1.0); }");
    assert_eq!(f64::from_bits(r), 3.0);
}

#[test]
fn globals_and_consts() {
    assert_eq!(
        ret("global counter: int;
             const STEP = 4 * 2;
             fn tick() { counter = counter + STEP; }
             _CPU_ fn main() -> int { tick(); tick(); return counter; }"),
        16
    );
}

#[test]
fn atomics_compile_and_run() {
    assert_eq!(
        ret("_CPU_ fn main() -> int {
                let p: int* = malloc(8);
                *p = 10;
                let old1 = atomic_add(p, 5);
                let old2 = atomic_inc(p);
                let old3 = atomic_cas(p, 16, 99);
                let old4 = atomic_exch(p, 7);
                let old5 = atomic_dec(p);
                return old1 * 10000 + old2 * 1000 + old3 * 100 + old4 + *p;
            }"),
        10 * 10000 + 15 * 1000 + 16 * 100 + 99 + 6
    );
}

#[test]
fn function_pointers() {
    assert_eq!(
        ret("fn twice(x: int) -> int { return x * 2; }
             fn thrice(x: int) -> int { return x * 3; }
             fn apply(f: int, x: int) -> int { return f(x); }
             _CPU_ fn main() -> int { return apply(twice, 10) + apply(thrice, 10); }"),
        50
    );
}

#[test]
fn print_and_launch() {
    let (_, mem, printed) = run("struct Args { out: int*; }
         _MTTOP_ fn kernel(tid: int, args: Args*) {
             args->out[tid] = tid * tid;
         }
         _CPU_ fn main() -> int {
             let a: Args* = malloc(sizeof(Args));
             a->out = malloc(8 * 8);
             let d: int* = malloc(4 * 8);
             d[0] = kernel; d[1] = a as int; d[2] = 0; d[3] = 7;
             mifd_launch(d as int);
             print_int(a->out[5]);
             return a->out[7];
         }");
    assert_eq!(printed, vec!["25"]);
    // Return value is in r1; also spot-check memory through printed value.
    let _ = mem;
}

#[test]
fn mttop_function_restrictions() {
    let e = ccsvm_xcc::compile_to_program(
        "_MTTOP_ fn k(tid: int, a: int*) { let p: int* = malloc(8); }",
    )
    .unwrap_err();
    assert!(e.message.contains("_CPU_"), "{e}");

    let e = ccsvm_xcc::compile_to_program(
        "_CPU_ fn helper() { }
         _MTTOP_ fn k(tid: int, a: int*) { helper(); }",
    )
    .unwrap_err();
    assert!(e.message.contains("cannot call"), "{e}");
}

#[test]
fn type_errors() {
    let cases = [
        ("_CPU_ fn main() { let x = 1 + 2.0; }", "cast explicitly"),
        ("_CPU_ fn main() { let x: float = 3; }", "cannot initialize"),
        ("_CPU_ fn main() { return 1.5; }", "return type mismatch"),
        ("_CPU_ fn main() { break; }", "outside a loop"),
        ("_CPU_ fn main() { let y = nope; }", "unknown name"),
        ("_CPU_ fn main() { undefined_fn(); }", "unknown name"),
        (
            "struct S { a: int; } _CPU_ fn main() { let s: S* = 0 as S*; let v = s->b; }",
            "no field",
        ),
        (
            "_CPU_ fn main(a: int, b: int, c: int, d: int, e: int, f: int, g: int) { }",
            "at most 6",
        ),
    ];
    for (src, needle) in cases {
        let e = ccsvm_xcc::compile_to_program(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "source {src:?}: expected error containing {needle:?}, got {:?}",
            e.message
        );
    }
}

#[test]
fn sizeof_struct() {
    assert_eq!(
        ret("struct Big { a: int; b: float; c: Big*; d: int; }
             _CPU_ fn main() -> int { return sizeof(Big) + sizeof(int) + sizeof(float*); }"),
        32 + 8 + 8
    );
}

#[test]
fn matmul_reference_small() {
    // 4x4 integer matmul compiled and run functionally.
    let (r, _, _) = run("const N = 4;
         _CPU_ fn main() -> int {
             let a: int* = malloc(N * N * 8);
             let b: int* = malloc(N * N * 8);
             let c: int* = malloc(N * N * 8);
             for (let i = 0; i < N; i = i + 1) {
                 for (let j = 0; j < N; j = j + 1) {
                     a[i * N + j] = i + j;
                     b[i * N + j] = i * j + 1;
                 }
             }
             for (let i = 0; i < N; i = i + 1) {
                 for (let j = 0; j < N; j = j + 1) {
                     let s = 0;
                     for (let k = 0; k < N; k = k + 1) {
                         s = s + a[i * N + k] * b[k * N + j];
                     }
                     c[i * N + j] = s;
                 }
             }
             let total = 0;
             for (let i = 0; i < N * N; i = i + 1) { total = total + c[i]; }
             return total;
         }");
    // Rust reference.
    let n = 4i64;
    let mut total = 0;
    for i in 0..n {
        for j in 0..n {
            let mut s = 0;
            for k in 0..n {
                s += (i + k) * (k * j + 1);
            }
            total += s;
        }
    }
    assert_eq!(r as i64, total);
}

#[test]
fn deep_expression_rejected_gracefully() {
    // 25 nested calls each holding temporaries exhausts the eval window.
    let mut e = String::from("1");
    for _ in 0..25 {
        e = format!("(1 + (2 * {e}))");
    }
    let src = format!("_CPU_ fn main() -> int {{ return {e}; }}");
    match ccsvm_xcc::compile_to_program(&src) {
        Ok(_) => {} // shallow enough after folding: fine
        Err(err) => assert!(err.message.contains("too deep"), "{err}"),
    }
}

#[test]
fn else_if_chains() {
    let src = "fn grade(x: int) -> int {
                   if (x >= 90) { return 4; }
                   else if (x >= 80) { return 3; }
                   else if (x >= 70) { return 2; }
                   else { return 0; }
               }
               _CPU_ fn main() -> int { return grade(95) * 1000 + grade(85) * 100 + grade(75) * 10 + grade(5); }";
    assert_eq!(ret(src), 4320);
}
