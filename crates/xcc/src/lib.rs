//! `xcc` — the xthreads compilation toolchain (paper §4.2, Figure 2).
//!
//! The paper's toolchain compiles a single source file containing both CPU
//! and MTTOP functions into one executable whose text section holds both
//! kinds of code. `xcc` reproduces that pipeline for **XC**, a small C-like
//! language:
//!
//! ```text
//! struct Args { v1: int*; v2: int*; sum: int*; done: int*; }
//!
//! _MTTOP_ fn add(tid: int, args: Args*) {
//!     args->sum[tid] = args->v1[tid] + args->v2[tid];
//! }
//!
//! _CPU_ fn main() {
//!     let a: Args* = malloc(sizeof(Args));
//!     a->v1 = malloc(256 * 8);
//!     // ...
//! }
//! ```
//!
//! Language summary:
//!
//! * Types: `int` (i64), `float` (f64), pointers `T*`, and `struct`s of
//!   8-byte fields (only used behind pointers). Pointer arithmetic and
//!   indexing scale by the pointee size, C-style.
//! * Items: `struct` definitions, `const NAME = <int-expr>;`,
//!   `global name: type;` (8-byte globals in the data segment), and
//!   functions marked `_CPU_`, `_MTTOP_`, or unmarked (callable from both —
//!   the hardware ISA is shared, the markers are documentation plus a check
//!   that CPU-only builtins don't leak into MTTOP code).
//! * Statements: `let`, assignment, `if`/`else`, `while`, `for`, `return`,
//!   `break`, `continue`, expression statements, blocks.
//! * Expressions: C precedence, `&&`/`||` short-circuit, casts `as int` /
//!   `as float`, function names as values (function pointers), `sizeof(T)`.
//! * Builtins: `malloc`, `free`, `print_int`, `print_float`, `mifd_launch`,
//!   `spawn_cthread`, `munmap`, `exit_thread` (CPU only); `atomic_add`,
//!   `atomic_cas`, `atomic_inc`, `atomic_dec`, `atomic_exch`, `fence`,
//!   `sqrt`, `fabsf`, `fminf`, `fmaxf` (everywhere).
//!
//! Code generation is deliberately simple and **identical for CPU and MTTOP
//! functions** (unoptimized stack-frame codegen, expression evaluation in a
//! register window): the paper's comparison depends on both sides being
//! compiled symmetrically, not on compiler quality.
//!
//! The output of [`compile`] is HIR assembly text; [`compile_to_program`]
//! pipes it through `ccsvm_isa::assemble` and attaches the data-segment
//! size, producing a runnable [`ccsvm_isa::Program`].

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::{FnKind, Type};
pub use codegen::CompiledInfo;

use ccsvm_isa::Program;
use std::error::Error;
use std::fmt;

/// A compilation error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line number (0 when not attributable to a line).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for CompileError {}

pub(crate) fn cerr<T>(line: usize, message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        line,
        message: message.into(),
    })
}

/// Compiles XC source to HIR assembly text.
///
/// # Errors
///
/// Returns the first [`CompileError`] (lexing, parsing, type or codegen).
pub fn compile(source: &str) -> Result<(String, CompiledInfo), CompileError> {
    let tokens = lexer::lex(source)?;
    let items = parser::parse(tokens)?;
    codegen::generate(&items)
}

/// Compiles XC source all the way to an executable [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`]; assembler failures on generated code are
/// compiler bugs and reported as line-0 errors.
///
/// # Examples
///
/// ```
/// let p = ccsvm_xcc::compile_to_program(
///     "_CPU_ fn main() { let x = 1 + 2; }",
/// ).unwrap();
/// assert!(p.lookup("main").is_some());
/// ```
pub fn compile_to_program(source: &str) -> Result<Program, CompileError> {
    let (asm, info) = compile(source)?;
    let mut program = ccsvm_isa::assemble(&asm).map_err(|e| CompileError {
        line: 0,
        message: format!("internal: generated assembly failed: {e}\n{asm}"),
    })?;
    program.globals_size = info.globals_size;
    Ok(program)
}
