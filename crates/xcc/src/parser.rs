//! XC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::{cerr, CompileError};

pub(crate) fn parse(tokens: Vec<Token>) -> Result<Vec<Item>, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at(&Tok::Eof) {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            cerr(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            )
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => cerr(line, format!("expected {what}, found {other:?}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----- items ---------------------------------------------------------

    fn item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        if self.eat_kw("struct") {
            return self.struct_def();
        }
        if self.eat_kw("global") {
            let name = self.ident("global name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.ty()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Item::Global { line, name, ty });
        }
        if self.eat_kw("const") {
            let name = self.ident("const name")?;
            self.expect(&Tok::Assign, "`=`")?;
            let value = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Item::Const { line, name, value });
        }
        let kind = if self.eat_kw("_CPU_") {
            FnKind::Cpu
        } else if self.eat_kw("_MTTOP_") {
            FnKind::Mttop
        } else {
            FnKind::Shared
        };
        if self.eat_kw("fn") {
            return self.fn_def(kind, line);
        }
        cerr(line, format!("expected item, found {:?}", self.peek()))
    }

    fn struct_def(&mut self) -> Result<Item, CompileError> {
        let name = self.ident("struct name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let fname = self.ident("field name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.ty()?;
            self.expect(&Tok::Semi, "`;`")?;
            fields.push((fname, ty));
        }
        Ok(Item::Struct(StructDef { name, fields }))
    }

    fn fn_def(&mut self, kind: FnKind, line: usize) -> Result<Item, CompileError> {
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        while !self.eat(&Tok::RParen) {
            if !params.is_empty() {
                self.expect(&Tok::Comma, "`,`")?;
            }
            let pname = self.ident("parameter name")?;
            self.expect(&Tok::Colon, "`:`")?;
            params.push((pname, self.ty()?));
        }
        let ret = if self.eat(&Tok::Arrow) {
            self.ty()?
        } else {
            Type::Int
        };
        let body = self.block()?;
        Ok(Item::Fn(FnDef {
            line,
            kind,
            name,
            params,
            ret,
            body,
        }))
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        let line = self.line();
        let base = match self.bump() {
            Tok::Ident(s) if s == "int" => Type::Int,
            Tok::Ident(s) if s == "float" => Type::Float,
            Tok::Ident(s) => Type::Struct(s),
            other => return cerr(line, format!("expected type, found {other:?}")),
        };
        let mut ty = base;
        while self.eat(&Tok::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    // ----- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.at(&Tok::LBrace) {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_kw("let") {
            let name = self.ident("variable name")?;
            let ty = if self.eat(&Tok::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect(&Tok::Assign, "`=`")?;
            let init = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Let {
                line,
                name,
                ty,
                init,
            });
        }
        if self.eat_kw("if") {
            return self.if_stmt();
        }
        if self.eat_kw("while") {
            self.expect(&Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen, "`)`")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            return self.for_stmt();
        }
        if self.eat_kw("return") {
            let value = if self.at(&Tok::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Return { line, value });
        }
        if self.eat_kw("break") {
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Break { line });
        }
        if self.eat_kw("continue") {
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Continue { line });
        }
        // Expression or assignment.
        let e = self.expr()?;
        if self.eat(&Tok::Assign) {
            let value = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(Stmt::Assign {
                line,
                target: e,
                value,
            });
        }
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::ExprStmt(e))
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_kw("else") {
            if self.at_kw("if") {
                self.bump();
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    /// `for (init; cond; step) body` desugars to `{ init; while (cond) { body; step; } }`.
    /// `continue` inside a `for` is rejected (it would skip `step`).
    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&Tok::LParen, "`(`")?;
        let init = self.simple_stmt()?;
        self.expect(&Tok::Semi, "`;`")?;
        let cond = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        let step = self.simple_stmt()?;
        self.expect(&Tok::RParen, "`)`")?;
        let mut body = self.block()?;
        if contains_continue(&body) {
            return cerr(
                self.line(),
                "`continue` inside `for` is not supported (use `while`)",
            );
        }
        body.push(step);
        Ok(Stmt::Block(vec![init, Stmt::While { cond, body }]))
    }

    /// `let x = e` or `lvalue = e` or a bare expression (no semicolon).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_kw("let") {
            let name = self.ident("variable name")?;
            let ty = if self.eat(&Tok::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect(&Tok::Assign, "`=`")?;
            let init = self.expr()?;
            return Ok(Stmt::Let {
                line,
                name,
                ty,
                init,
            });
        }
        let e = self.expr()?;
        if self.eat(&Tok::Assign) {
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                line,
                target: e,
                value,
            });
        }
        Ok(Stmt::ExprStmt(e))
    }

    // ----- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.logical_and()?;
        while self.at(&Tok::OrOr) {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::LogicalOr, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bit_or()?;
        while self.at(&Tok::AndAnd) {
            let line = self.line();
            self.bump();
            let rhs = self.bit_or()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::LogicalAnd, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bit_xor()?;
        while self.at(&Tok::Pipe) {
            let line = self.line();
            self.bump();
            let rhs = self.bit_xor()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::Or, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.bit_and()?;
        while self.at(&Tok::Caret) {
            let line = self.line();
            self.bump();
            let rhs = self.bit_and()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::Xor, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.equality()?;
        while self.at(&Tok::Amp) && !matches!(self.peek2(), Tok::Amp) {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(BinOp::And, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.shift()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.cast()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.cast()?;
            e = Expr {
                line,
                kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn cast(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.unary()?;
        while self.at_kw("as") {
            let line = self.line();
            self.bump();
            let ty = self.ty()?;
            e = Expr {
                line,
                kind: ExprKind::Cast(Box::new(e), ty),
            };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
            });
        }
        if self.eat(&Tok::Not) {
            let e = self.unary()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Not, Box::new(e)),
            });
        }
        if self.eat(&Tok::Star) {
            let e = self.unary()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Un(UnOp::Deref, Box::new(e)),
            });
        }
        if self.eat(&Tok::Amp) {
            let e = self.unary()?;
            return Ok(Expr {
                line,
                kind: ExprKind::AddrOf(Box::new(e)),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                e = Expr {
                    line,
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                };
            } else if self.eat(&Tok::Arrow) {
                let field = self.ident("field name")?;
                e = Expr {
                    line,
                    kind: ExprKind::Field(Box::new(e), field),
                };
            } else if self.eat(&Tok::LParen) {
                let mut args = Vec::new();
                while !self.eat(&Tok::RParen) {
                    if !args.is_empty() {
                        self.expect(&Tok::Comma, "`,`")?;
                    }
                    args.push(self.expr()?);
                }
                e = Expr {
                    line,
                    kind: ExprKind::Call(Box::new(e), args),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                line,
                kind: ExprKind::IntLit(v),
            }),
            Tok::Float(v) => Ok(Expr {
                line,
                kind: ExprKind::FloatLit(v),
            }),
            Tok::Ident(s) if s == "sizeof" => {
                self.expect(&Tok::LParen, "`(`")?;
                let ty = self.ty()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Expr {
                    line,
                    kind: ExprKind::SizeOf(ty),
                })
            }
            Tok::Ident(s) => Ok(Expr {
                line,
                kind: ExprKind::Name(s),
            }),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => cerr(line, format!("expected expression, found {other:?}")),
        }
    }
}

fn contains_continue(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Continue { .. } => true,
        Stmt::If {
            then_blk, else_blk, ..
        } => contains_continue(then_blk) || contains_continue(else_blk),
        Stmt::Block(b) => contains_continue(b),
        // `continue` inside a nested loop binds to that loop: fine.
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Vec<Item> {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_struct_global_const_fn() {
        let items = parse_ok(
            "struct P { x: int; y: float; }
             global counter: int;
             const N = 4 * 8;
             _CPU_ fn main() { let a = N; }
             _MTTOP_ fn k(tid: int, p: P*) -> int { return tid; }
             fn helper(a: float) -> float { return a; }",
        );
        assert_eq!(items.len(), 6);
        match &items[4] {
            Item::Fn(f) => {
                assert_eq!(f.kind, FnKind::Mttop);
                assert_eq!(f.params.len(), 2);
                assert_eq!(f.params[1].1, Type::Struct("P".into()).ptr_to());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let items = parse_ok("fn f() { let x = 1 + 2 * 3 < 4 && 5 == 6; }");
        let Item::Fn(f) = &items[0] else { panic!() };
        let Stmt::Let { init, .. } = &f.body[0] else {
            panic!()
        };
        // Top node must be LogicalAnd.
        match &init.kind {
            ExprKind::Bin(BinOp::LogicalAnd, l, _) => match &l.kind {
                ExprKind::Bin(BinOp::Lt, a, _) => match &a.kind {
                    ExprKind::Bin(BinOp::Add, _, m) => {
                        assert!(matches!(m.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                    }
                    o => panic!("{o:?}"),
                },
                o => panic!("{o:?}"),
            },
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn postfix_chains() {
        let items =
            parse_ok("fn f(a: P*) { a->next[3]->val = 7; } struct P { next: P*; val: int; }");
        let Item::Fn(f) = &items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn for_desugars_to_while() {
        let items = parse_ok("fn f() { for (let i = 0; i < 4; i = i + 1) { } }");
        let Item::Fn(f) = &items[0] else { panic!() };
        let Stmt::Block(b) = &f.body[0] else { panic!() };
        assert!(matches!(b[0], Stmt::Let { .. }));
        assert!(matches!(b[1], Stmt::While { .. }));
    }

    #[test]
    fn continue_in_for_rejected() {
        let toks = lex("fn f() { for (let i = 0; i < 4; i = i + 1) { continue; } }").unwrap();
        assert!(parse(toks).unwrap_err().message.contains("continue"));
    }

    #[test]
    fn if_else_chain_and_address_of() {
        parse_ok(
            "fn f(x: int) -> int {
                if (x > 0) { return 1; }
                else if (x < 0) { return 0 - 1; }
                else { let p = &x; return *p; }
             }",
        );
    }

    #[test]
    fn casts_and_sizeof() {
        parse_ok("struct S { a: int; b: int; } fn f() { let x = 3 as float; let n = sizeof(S); }");
    }

    #[test]
    fn bitand_vs_logical_and_disambiguation() {
        let items = parse_ok("fn f(a: int, b: int) { let x = a & b; let y = a && b; }");
        let Item::Fn(f) = &items[0] else { panic!() };
        let Stmt::Let { init, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Bin(BinOp::And, _, _)));
        let Stmt::Let { init, .. } = &f.body[1] else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Bin(BinOp::LogicalAnd, _, _)));
    }

    #[test]
    fn errors_have_lines() {
        let e = parse(lex("fn f() {\n let = 3;\n}").unwrap()).unwrap_err();
        assert_eq!(e.line, 2);
    }
}
