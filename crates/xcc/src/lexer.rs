//! XC lexer.

use crate::{cerr, CompileError};

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Arrow,  // ->
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Not,    // !
    AndAnd, // &&
    OrOr,   // ||
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
    Eof,
}

#[derive(Clone, Debug)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: usize,
}

pub(crate) fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return cerr(line, "unterminated block comment");
                }
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                if c == '0' && i + 1 < n && bytes[i + 1] == 'x' {
                    i += 2;
                    while i < n && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = bytes[start + 2..i].iter().collect();
                    let v = u64::from_str_radix(&text, 16).map_err(|_| CompileError {
                        line,
                        message: format!("bad hex literal `0x{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v as i64),
                        line,
                    });
                    continue;
                }
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A float needs `digit . digit` (not `..` or method-ish).
                if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                        i += 1;
                        if i < n && (bytes[i] == '+' || bytes[i] == '-') {
                            i += 1;
                        }
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let v: f64 = text.parse().map_err(|_| CompileError {
                        line,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Float(v),
                        line,
                    });
                } else {
                    let text: String = bytes[start..i].iter().collect();
                    let v: i64 = text.parse().map_err(|_| CompileError {
                        line,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            _ => {
                let two = |a: char, b: char| -> bool { c == a && i + 1 < n && bytes[i + 1] == b };
                let (tok, len) = if two('-', '>') {
                    (Tok::Arrow, 2)
                } else if two('&', '&') {
                    (Tok::AndAnd, 2)
                } else if two('|', '|') {
                    (Tok::OrOr, 2)
                } else if two('=', '=') {
                    (Tok::EqEq, 2)
                } else if two('!', '=') {
                    (Tok::NotEq, 2)
                } else if two('<', '=') {
                    (Tok::Le, 2)
                } else if two('>', '=') {
                    (Tok::Ge, 2)
                } else if two('<', '<') {
                    (Tok::Shl, 2)
                } else if two('>', '>') {
                    (Tok::Shr, 2)
                } else {
                    let t = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ';' => Tok::Semi,
                        ':' => Tok::Colon,
                        ',' => Tok::Comma,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        '!' => Tok::Not,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '.' => Tok::Dot,
                        other => return cerr(line, format!("unexpected character `{other}`")),
                    };
                    (t, 1)
                };
                out.push(Token { tok, line });
                i += len;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_numbers() {
        assert_eq!(
            kinds("foo 42 0x1F 2.5 1.0e3"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char_priority() {
        assert_eq!(
            kinds("-> && || == != <= >= << >> < > = !"),
            vec![
                Tok::Arrow,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Not,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn int_dot_without_digit_is_not_float() {
        // `p.x` style postfix must not eat `2.` as a float start.
        assert_eq!(
            kinds("2.x"),
            vec![Tok::Int(2), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("`").is_err());
        assert!(lex("/* unterminated").is_err());
        let e = lex("a\nb\n`").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
