//! XC → HIR assembly code generation.
//!
//! Deliberately simple and identical for CPU and MTTOP functions: stack-frame
//! locals, expression evaluation in the `r8`–`r27` register window, a single
//! epilogue per function. Two small peepholes (immediate ALU operands and
//! branch-on-compare fusion) keep the generated instruction counts sane for
//! simulation without giving either core type an advantage.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ast::*;
use crate::{cerr, CompileError};

/// Size of every scalar slot (ints, floats, pointers, struct fields).
const WORD: u64 = 8;
/// Evaluation registers r8..=r17.
const EVAL_BASE: usize = 8;
const EVAL_REGS: usize = 10;
/// Callee-saved registers r18..=r27 caching non-address-taken locals.
const LOCAL_REG_FIRST: u8 = 18;
const LOCAL_REG_LAST: u8 = 27;

/// Data produced alongside the assembly text.
#[derive(Clone, Debug, Default)]
pub struct CompiledInfo {
    /// Bytes of global data segment used.
    pub globals_size: u64,
    /// Global name → offset within the data segment.
    pub globals: HashMap<String, u64>,
    /// Function name → kind.
    pub functions: HashMap<String, FnKind>,
}

#[derive(Clone, Debug)]
struct FnSig {
    kind: FnKind,
    params: Vec<Type>,
    ret: Type,
}

struct StructInfo {
    /// field name → (offset bytes, type).
    fields: HashMap<String, (u64, Type)>,
    size: u64,
}

pub(crate) fn generate(items: &[Item]) -> Result<(String, CompiledInfo), CompileError> {
    let mut cg = Codegen::collect(items)?;
    for item in items {
        if let Item::Fn(f) = item {
            cg.function(f)?;
        }
    }
    // Runtime stubs: `__start` is the CPU process entry (calls `main`, then
    // exits the thread with main's return value preserved in r1); `__kexit`
    // is the return address given to launched MTTOP threads and spawned CPU
    // threads, so a plain `return` from a kernel terminates the thread.
    if cg.fns.contains_key("main") {
        cg.emit_label("__start");
        cg.emit("call main");
        cg.emit("exit");
    }
    cg.emit_label("__kexit");
    cg.emit("exit");
    let info = CompiledInfo {
        globals_size: cg.globals_size,
        globals: cg.globals.clone(),
        functions: cg.fns.iter().map(|(k, v)| (k.clone(), v.kind)).collect(),
    };
    Ok((cg.out, info))
}

struct Codegen {
    structs: HashMap<String, StructInfo>,
    consts: HashMap<String, i64>,
    globals: HashMap<String, u64>,
    globals_size: u64,
    fns: HashMap<String, FnSig>,
    out: String,
    labels: usize,
}

/// Where a local's value lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Place {
    /// A callee-saved register (locals whose address is never taken).
    Reg(u8),
    /// A frame slot at `fp + offset`.
    Frame(u64),
}

/// A local variable binding.
#[derive(Clone, Debug)]
struct Local {
    place: Place,
    ty: Type,
}

struct FnCtx {
    kind: FnKind,
    ret: Type,
    scopes: Vec<HashMap<String, Local>>,
    next_slot: u64,
    max_slot: u64,
    /// Free callee-saved registers (popped for new locals).
    reg_pool: Vec<u8>,
    /// Callee-saved registers this function ever used.
    used_regs: std::collections::BTreeSet<u8>,
    /// Names whose address is taken somewhere in the function.
    addr_taken: std::collections::HashSet<String>,
    epilogue: String,
    /// (continue-label, break-label) stack.
    loops: Vec<(String, String)>,
}

impl FnCtx {
    fn find(&self, name: &str) -> Option<&Local> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Chooses a home for a new local of `name`.
    fn place_for(&mut self, name: &str) -> Place {
        if !self.addr_taken.contains(name) {
            if let Some(r) = self.reg_pool.pop() {
                self.used_regs.insert(r);
                return Place::Reg(r);
            }
        }
        let p = Place::Frame(self.next_slot * WORD);
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        p
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Pops a scope, returning its registers to the pool and its frame slots
    /// to the allocator.
    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope");
        let mut slots = 0;
        for local in scope.values() {
            match local.place {
                Place::Reg(r) => self.reg_pool.push(r),
                Place::Frame(_) => slots += 1,
            }
        }
        self.next_slot -= slots;
    }
}

impl Codegen {
    fn collect(items: &[Item]) -> Result<Codegen, CompileError> {
        let mut cg = Codegen {
            structs: HashMap::new(),
            consts: HashMap::new(),
            globals: HashMap::new(),
            globals_size: 0,
            fns: HashMap::new(),
            out: String::new(),
            labels: 0,
        };
        // Structs first (consts may sizeof them).
        for item in items {
            if let Item::Struct(s) = item {
                if cg.structs.contains_key(&s.name) {
                    return cerr(0, format!("duplicate struct `{}`", s.name));
                }
                let mut fields = HashMap::new();
                for (i, (fname, fty)) in s.fields.iter().enumerate() {
                    if matches!(fty, Type::Struct(_)) {
                        return cerr(
                            0,
                            format!(
                                "field `{}.{fname}` must be a scalar or pointer (nest structs by pointer)",
                                s.name
                            ),
                        );
                    }
                    if fields
                        .insert(fname.clone(), (i as u64 * WORD, fty.clone()))
                        .is_some()
                    {
                        return cerr(0, format!("duplicate field `{}.{fname}`", s.name));
                    }
                }
                cg.structs.insert(
                    s.name.clone(),
                    StructInfo {
                        fields,
                        size: s.fields.len() as u64 * WORD,
                    },
                );
            }
        }
        for item in items {
            match item {
                Item::Struct(_) => {}
                Item::Const { line, name, value } => {
                    let v = cg.fold_const(value, *line)?;
                    if cg.consts.insert(name.clone(), v).is_some() {
                        return cerr(*line, format!("duplicate const `{name}`"));
                    }
                }
                Item::Global { line, name, ty } => {
                    if matches!(ty, Type::Struct(_)) {
                        return cerr(*line, "globals must be scalars or pointers");
                    }
                    if cg.globals.contains_key(name) {
                        return cerr(*line, format!("duplicate global `{name}`"));
                    }
                    cg.globals.insert(name.clone(), cg.globals_size);
                    cg.globals_size += WORD;
                }
                Item::Fn(f) => {
                    if is_builtin(&f.name) {
                        return cerr(f.line, format!("`{}` is a builtin", f.name));
                    }
                    if f.params.len() > 6 {
                        return cerr(f.line, "at most 6 parameters supported");
                    }
                    let sig = FnSig {
                        kind: f.kind,
                        params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                        ret: f.ret.clone(),
                    };
                    if cg.fns.insert(f.name.clone(), sig).is_some() {
                        return cerr(f.line, format!("duplicate function `{}`", f.name));
                    }
                }
            }
        }
        Ok(cg)
    }

    fn fold_const(&self, e: &Expr, line: usize) -> Result<i64, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::Name(n) => self.consts.get(n).copied().ok_or_else(|| CompileError {
                line,
                message: format!("`{n}` is not a constant"),
            }),
            ExprKind::SizeOf(t) => Ok(self.sizeof_type(t, line)? as i64),
            ExprKind::Un(UnOp::Neg, inner) => Ok(-self.fold_const(inner, line)?),
            ExprKind::Bin(op, a, b) => {
                let (a, b) = (self.fold_const(a, line)?, self.fold_const(b, line)?);
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return cerr(line, "constant division by zero");
                        }
                        a / b
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return cerr(line, "constant remainder by zero");
                        }
                        a % b
                    }
                    BinOp::Shl => a << (b & 63),
                    BinOp::Shr => ((a as u64) >> (b & 63)) as i64,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    _ => return cerr(line, "unsupported operator in constant"),
                })
            }
            _ => cerr(line, "unsupported constant expression"),
        }
    }

    /// Size of the object a `T*` points at (for pointer arithmetic).
    fn sizeof_pointee(&self, ty: &Type, line: usize) -> Result<u64, CompileError> {
        match ty {
            Type::Ptr(inner) => self.sizeof_type(inner, line),
            _ => cerr(line, format!("`{ty}` is not a pointer")),
        }
    }

    fn sizeof_type(&self, ty: &Type, line: usize) -> Result<u64, CompileError> {
        match ty {
            Type::Int | Type::Float | Type::Ptr(_) => Ok(WORD),
            Type::Struct(name) => {
                self.structs
                    .get(name)
                    .map(|s| s.size)
                    .ok_or_else(|| CompileError {
                        line,
                        message: format!("unknown struct `{name}`"),
                    })
            }
        }
    }

    fn label(&mut self, hint: &str) -> String {
        self.labels += 1;
        format!(".L{}_{hint}", self.labels)
    }

    fn emit(&mut self, text: &str) {
        let _ = writeln!(self.out, "  {text}");
    }

    fn emit_label(&mut self, l: &str) {
        let _ = writeln!(self.out, "{l}:");
    }

    // ----- functions ------------------------------------------------------

    fn function(&mut self, f: &FnDef) -> Result<(), CompileError> {
        let mut addr_taken = std::collections::HashSet::new();
        collect_addr_taken_stmts(&f.body, &mut addr_taken);
        let mut ctx = FnCtx {
            kind: f.kind,
            ret: f.ret.clone(),
            scopes: vec![HashMap::new()],
            next_slot: 0,
            max_slot: 0,
            reg_pool: (LOCAL_REG_FIRST..=LOCAL_REG_LAST).rev().collect(),
            used_regs: std::collections::BTreeSet::new(),
            addr_taken,
            epilogue: self.label("epi"),
            loops: Vec::new(),
        };

        // Pass 1: emit the body into a side buffer. Local homes are chosen as
        // declarations appear; the frame size and callee-saved set are only
        // known afterwards, so the prologue is emitted second.
        let outer = std::mem::take(&mut self.out);
        for (i, (pname, pty)) in f.params.iter().enumerate() {
            let place = ctx.place_for(pname);
            match place {
                Place::Reg(r) => self.emit(&format!("mv r{r}, r{}", i + 1)),
                Place::Frame(off) => self.emit(&format!("st8 r{}, {off}(r29)", i + 1)),
            }
            let local = Local {
                place,
                ty: pty.clone(),
            };
            if ctx.scopes[0].insert(pname.clone(), local).is_some() {
                return cerr(f.line, format!("duplicate parameter `{pname}`"));
            }
        }
        self.block(&mut ctx, &f.body)?;
        // Implicit `return 0` for fall-through.
        self.emit("li r1, 0");
        let body = std::mem::replace(&mut self.out, outer);

        // Pass 2: prologue (ra, fp, callee saves), body, epilogue.
        let saves: Vec<u8> = ctx.used_regs.iter().copied().collect();
        let frame = (16 + (saves.len() as u64 + ctx.max_slot) * WORD).next_multiple_of(16);
        self.emit_label(&f.name);
        self.emit(&format!("sub r30, r30, {frame}"));
        self.emit(&format!("st8 r31, {}(r30)", frame - 8));
        self.emit(&format!("st8 r29, {}(r30)", frame - 16));
        for (k, r) in saves.iter().enumerate() {
            self.emit(&format!("st8 r{r}, {}(r30)", frame - 24 - 8 * k as u64));
        }
        self.emit("mv r29, r30");
        self.out.push_str(&body);
        let epi = ctx.epilogue.clone();
        self.emit_label(&epi);
        for (k, r) in saves.iter().enumerate() {
            self.emit(&format!("ld8 r{r}, {}(r30)", frame - 24 - 8 * k as u64));
        }
        self.emit(&format!("ld8 r31, {}(r30)", frame - 8));
        self.emit(&format!("ld8 r29, {}(r30)", frame - 16));
        self.emit(&format!("add r30, r30, {frame}"));
        self.emit("ret");
        Ok(())
    }

    fn block(&mut self, ctx: &mut FnCtx, stmts: &[Stmt]) -> Result<(), CompileError> {
        ctx.push_scope();
        for s in stmts {
            self.stmt(ctx, s)?;
        }
        ctx.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let {
                line,
                name,
                ty,
                init,
            } => {
                let ity = self.expr(ctx, init, 0)?;
                let final_ty = match ty {
                    Some(declared) => {
                        if !compatible(declared, &ity) {
                            return cerr(
                                *line,
                                format!("cannot initialize `{declared}` from `{ity}`"),
                            );
                        }
                        declared.clone()
                    }
                    None => ity,
                };
                if matches!(final_ty, Type::Struct(_)) {
                    return cerr(*line, "struct values are not first-class; use a pointer");
                }
                let place = ctx.place_for(name);
                match place {
                    Place::Reg(r) => self.emit(&format!("mv r{r}, r8")),
                    Place::Frame(off) => self.emit(&format!("st8 r8, {off}(r29)")),
                }
                ctx.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    Local {
                        place,
                        ty: final_ty,
                    },
                );
                Ok(())
            }
            Stmt::Assign {
                line,
                target,
                value,
            } => self.assign(ctx, target, value, *line),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let else_l = self.label("else");
                let end_l = self.label("endif");
                self.branch_if_false(ctx, cond, &else_l)?;
                self.block(ctx, then_blk)?;
                if else_blk.is_empty() {
                    self.emit_label(&else_l);
                } else {
                    self.emit(&format!("jmp {end_l}"));
                    self.emit_label(&else_l);
                    self.block(ctx, else_blk)?;
                    self.emit_label(&end_l);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.label("while");
                let end = self.label("endwhile");
                self.emit_label(&head);
                self.branch_if_false(ctx, cond, &end)?;
                ctx.loops.push((head.clone(), end.clone()));
                self.block(ctx, body)?;
                ctx.loops.pop();
                self.emit(&format!("jmp {head}"));
                self.emit_label(&end);
                Ok(())
            }
            Stmt::Return { line, value } => {
                if let Some(v) = value {
                    let ty = self.expr(ctx, v, 0)?;
                    if !compatible(&ctx.ret, &ty) {
                        return cerr(
                            *line,
                            format!("return type mismatch: expected `{}`, got `{ty}`", ctx.ret),
                        );
                    }
                    self.emit("mv r1, r8");
                } else {
                    self.emit("li r1, 0");
                }
                let epi = ctx.epilogue.clone();
                self.emit(&format!("jmp {epi}"));
                Ok(())
            }
            Stmt::Break { line } => match ctx.loops.last() {
                Some((_, brk)) => {
                    let brk = brk.clone();
                    self.emit(&format!("jmp {brk}"));
                    Ok(())
                }
                None => cerr(*line, "`break` outside a loop"),
            },
            Stmt::Continue { line } => match ctx.loops.last() {
                Some((cont, _)) => {
                    let cont = cont.clone();
                    self.emit(&format!("jmp {cont}"));
                    Ok(())
                }
                None => cerr(*line, "`continue` outside a loop"),
            },
            Stmt::ExprStmt(e) => {
                self.expr(ctx, e, 0)?;
                Ok(())
            }
            Stmt::Block(b) => self.block(ctx, b),
        }
    }

    /// Emits a branch to `target` when `cond` is false, fusing integer
    /// comparisons into single branch instructions.
    fn branch_if_false(
        &mut self,
        ctx: &mut FnCtx,
        cond: &Expr,
        target: &str,
    ) -> Result<(), CompileError> {
        if let ExprKind::Bin(op, a, b) = &cond.kind {
            let fused = match op {
                BinOp::Lt => Some("bge"),
                BinOp::Ge => Some("blt"),
                BinOp::Gt => Some("bge"), // swapped operands below
                BinOp::Le => Some("blt"), // swapped operands below
                BinOp::Eq => Some("bne"),
                BinOp::Ne => Some("beq"),
                _ => None,
            };
            if let Some(mn) = fused {
                let ta = self.expr(ctx, a, 0)?;
                let tb = self.expr(ctx, b, 1)?;
                if ta.is_int_like() && tb.is_int_like() {
                    let (x, y) = match op {
                        BinOp::Gt | BinOp::Le => ("r9", "r8"),
                        _ => ("r8", "r9"),
                    };
                    self.emit(&format!("{mn} {x}, {y}, {target}"));
                    return Ok(());
                }
                // Float comparison: fall through to materialized flag below,
                // re-using the already-evaluated operands.
                let flag = match op {
                    BinOp::Lt => "flt r8, r8, r9",
                    BinOp::Le => "fle r8, r8, r9",
                    BinOp::Gt => "flt r8, r9, r8",
                    BinOp::Ge => "fle r8, r9, r8",
                    BinOp::Eq => "feq r8, r8, r9",
                    BinOp::Ne => "feq r8, r8, r9",
                    _ => unreachable!(),
                };
                if !matches!(ta, Type::Float) || !matches!(tb, Type::Float) {
                    return cerr(cond.line, "comparison operands must both be int or float");
                }
                self.emit(flag);
                if matches!(op, BinOp::Ne) {
                    self.emit(&format!("bne r8, r0, {target}"));
                } else {
                    self.emit(&format!("beq r8, r0, {target}"));
                }
                return Ok(());
            }
        }
        let t = self.expr(ctx, cond, 0)?;
        if !t.is_int_like() {
            return cerr(cond.line, "condition must be an integer");
        }
        self.emit(&format!("beq r8, r0, {target}"));
        Ok(())
    }

    fn assign(
        &mut self,
        ctx: &mut FnCtx,
        target: &Expr,
        value: &Expr,
        line: usize,
    ) -> Result<(), CompileError> {
        // Fast path: plain local.
        if let ExprKind::Name(n) = &target.kind {
            if let Some(local) = ctx.find(n).cloned() {
                let vt = self.expr(ctx, value, 0)?;
                if !compatible(&local.ty, &vt) {
                    return cerr(line, format!("cannot assign `{vt}` to `{}`", local.ty));
                }
                match local.place {
                    Place::Reg(r) => self.emit(&format!("mv r{r}, r8")),
                    Place::Frame(off) => self.emit(&format!("st8 r8, {off}(r29)")),
                }
                return Ok(());
            }
        }
        let vt = self.expr(ctx, value, 0)?;
        let et = self.lvalue_addr(ctx, target, 1)?;
        if !compatible(&et, &vt) {
            return cerr(line, format!("cannot assign `{vt}` to `{et}`"));
        }
        self.emit("st8 r8, 0(r9)");
        Ok(())
    }

    /// Computes the address of an lvalue into `r(8+d)`; returns the element
    /// type stored there.
    fn lvalue_addr(&mut self, ctx: &mut FnCtx, e: &Expr, d: usize) -> Result<Type, CompileError> {
        let rd = reg(d)?;
        match &e.kind {
            ExprKind::Name(n) => {
                if let Some(local) = ctx.find(n).cloned() {
                    let Place::Frame(off) = local.place else {
                        return cerr(
                            e.line,
                            format!("internal: address taken of register local `{n}`"),
                        );
                    };
                    self.emit(&format!("add {rd}, r29, {off}"));
                    return Ok(local.ty);
                }
                if let Some(&off) = self.globals.get(n) {
                    self.emit(&format!("li {rd}, {}", ccsvm_isa::abi::DATA_BASE + off));
                    return Ok(Type::Int); // globals are declared scalars
                }
                cerr(e.line, format!("`{n}` is not an lvalue"))
            }
            ExprKind::Un(UnOp::Deref, p) => {
                let pt = self.expr(ctx, p, d)?;
                match pt {
                    Type::Ptr(inner) if !matches!(*inner, Type::Struct(_)) => Ok(*inner),
                    Type::Int => Ok(Type::Int), // untyped pointer
                    _ => cerr(e.line, format!("cannot dereference `{pt}`")),
                }
            }
            ExprKind::Index(base, idx) => {
                let (elem, _) = self.index_addr(ctx, base, idx, d)?;
                match elem {
                    Type::Struct(_) => cerr(e.line, "cannot assign whole structs"),
                    t => Ok(t),
                }
            }
            ExprKind::Field(base, fname) => self.field_addr(ctx, base, fname, d, e.line),
            _ => cerr(e.line, "expression is not an lvalue"),
        }
    }

    /// Leaves `base + idx * sizeof(elem)` in `r(8+d)`.
    fn index_addr(
        &mut self,
        ctx: &mut FnCtx,
        base: &Expr,
        idx: &Expr,
        d: usize,
    ) -> Result<(Type, ()), CompileError> {
        let rd = reg(d)?;
        let bt = self.expr(ctx, base, d)?;
        let elem = match &bt {
            Type::Ptr(inner) => (**inner).clone(),
            Type::Int => Type::Int, // untyped pointer indexes as int words
            _ => return cerr(base.line, format!("cannot index `{bt}`")),
        };
        let size = self.sizeof_type(&elem, base.line)?;
        if let ExprKind::IntLit(c) = idx.kind {
            if c != 0 {
                self.emit(&format!("add {rd}, {rd}, {}", c * size as i64));
            }
            return Ok((elem, ()));
        }
        let ri = reg(d + 1)?;
        let it = self.expr(ctx, idx, d + 1)?;
        if !it.is_int_like() {
            return cerr(idx.line, "index must be an integer");
        }
        if size != 1 {
            self.emit(&format!("mul {ri}, {ri}, {size}"));
        }
        self.emit(&format!("add {rd}, {rd}, {ri}"));
        Ok((elem, ()))
    }

    fn field_addr(
        &mut self,
        ctx: &mut FnCtx,
        base: &Expr,
        fname: &str,
        d: usize,
        line: usize,
    ) -> Result<Type, CompileError> {
        let rd = reg(d)?;
        let bt = self.expr(ctx, base, d)?;
        let sname = match &bt {
            Type::Ptr(inner) => match &**inner {
                Type::Struct(s) => s.clone(),
                other => return cerr(line, format!("`->` on non-struct pointer `{other}*`")),
            },
            other => return cerr(line, format!("`->` needs a struct pointer, got `{other}`")),
        };
        let info = self.structs.get(&sname).ok_or_else(|| CompileError {
            line,
            message: format!("unknown struct `{sname}`"),
        })?;
        let (off, fty) = info
            .fields
            .get(fname)
            .cloned()
            .ok_or_else(|| CompileError {
                line,
                message: format!("struct `{sname}` has no field `{fname}`"),
            })?;
        if off != 0 {
            self.emit(&format!("add {rd}, {rd}, {off}"));
        }
        Ok(fty)
    }

    // ----- expressions ----------------------------------------------------

    /// Evaluates `e` into `r(8+d)`, returning its type.
    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr, d: usize) -> Result<Type, CompileError> {
        let rd = reg(d)?;
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(&format!("li {rd}, {v}"));
                Ok(Type::Int)
            }
            ExprKind::FloatLit(v) => {
                self.emit(&format!("lif {rd}, {v:?}"));
                Ok(Type::Float)
            }
            ExprKind::SizeOf(t) => {
                let s = self.sizeof_type(t, e.line)?;
                self.emit(&format!("li {rd}, {s}"));
                Ok(Type::Int)
            }
            ExprKind::Name(n) => {
                if let Some(local) = ctx.find(n).cloned() {
                    match local.place {
                        Place::Reg(r) => self.emit(&format!("mv {rd}, r{r}")),
                        Place::Frame(off) => self.emit(&format!("ld8 {rd}, {off}(r29)")),
                    }
                    return Ok(local.ty);
                }
                if let Some(&v) = self.consts.get(n) {
                    self.emit(&format!("li {rd}, {v}"));
                    return Ok(Type::Int);
                }
                if let Some(&off) = self.globals.get(n) {
                    self.emit(&format!("li {rd}, {}", ccsvm_isa::abi::DATA_BASE + off));
                    self.emit(&format!("ld8 {rd}, 0({rd})"));
                    return Ok(Type::Int);
                }
                if self.fns.contains_key(n) {
                    self.emit(&format!("li {rd}, @{n}"));
                    return Ok(Type::Int); // function pointer value
                }
                cerr(e.line, format!("unknown name `{n}`"))
            }
            ExprKind::Cast(inner, to) => {
                let from = self.expr(ctx, inner, d)?;
                match (from.is_int_like(), to) {
                    (_, Type::Struct(_)) => cerr(e.line, "cannot cast to a struct value"),
                    (true, Type::Float) => {
                        self.emit(&format!("i2f {rd}, {rd}"));
                        Ok(Type::Float)
                    }
                    (false, Type::Float) => Ok(Type::Float),
                    (false, t) => {
                        self.emit(&format!("f2i {rd}, {rd}"));
                        Ok(t.clone())
                    }
                    (true, t) => Ok(t.clone()),
                }
            }
            ExprKind::AddrOf(inner) => {
                let t = self.lvalue_addr(ctx, inner, d)?;
                Ok(t.ptr_to())
            }
            ExprKind::Un(op, inner) => {
                let t = self.expr(ctx, inner, d)?;
                match op {
                    UnOp::Neg => {
                        if t.is_int_like() {
                            self.emit(&format!("sub {rd}, r0, {rd}"));
                            Ok(Type::Int)
                        } else {
                            self.emit(&format!("fneg {rd}, {rd}"));
                            Ok(Type::Float)
                        }
                    }
                    UnOp::Not => {
                        if !t.is_int_like() {
                            return cerr(e.line, "`!` needs an integer");
                        }
                        self.emit(&format!("seq {rd}, {rd}, 0"));
                        Ok(Type::Int)
                    }
                    UnOp::Deref => match t {
                        Type::Ptr(inner) => match *inner {
                            Type::Struct(_) => cerr(e.line, "cannot load a whole struct; use `->`"),
                            elem => {
                                self.emit(&format!("ld8 {rd}, 0({rd})"));
                                Ok(elem)
                            }
                        },
                        Type::Int => {
                            self.emit(&format!("ld8 {rd}, 0({rd})"));
                            Ok(Type::Int)
                        }
                        other => cerr(e.line, format!("cannot dereference `{other}`")),
                    },
                }
            }
            ExprKind::Index(base, idx) => {
                let (elem, ()) = self.index_addr(ctx, base, idx, d)?;
                match elem {
                    // Indexing an array of structs yields the element address.
                    Type::Struct(s) => Ok(Type::Struct(s).ptr_to()),
                    t => {
                        self.emit(&format!("ld8 {rd}, 0({rd})"));
                        Ok(t)
                    }
                }
            }
            ExprKind::Field(base, fname) => {
                let fty = self.field_addr(ctx, base, fname, d, e.line)?;
                self.emit(&format!("ld8 {rd}, 0({rd})"));
                Ok(fty)
            }
            ExprKind::Bin(op, a, b) => self.binary(ctx, e.line, *op, a, b, d),
            ExprKind::Call(callee, args) => self.call(ctx, e.line, callee, args, d),
        }
    }

    fn binary(
        &mut self,
        ctx: &mut FnCtx,
        line: usize,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        d: usize,
    ) -> Result<Type, CompileError> {
        let rd = reg(d)?;
        // Short-circuit logicals.
        if matches!(op, BinOp::LogicalAnd | BinOp::LogicalOr) {
            let done = self.label("sc");
            let ta = self.expr(ctx, a, d)?;
            if !ta.is_int_like() {
                return cerr(line, "logical operand must be an integer");
            }
            self.emit(&format!("sne {rd}, {rd}, 0"));
            match op {
                BinOp::LogicalAnd => self.emit(&format!("beq {rd}, r0, {done}")),
                _ => self.emit(&format!("bne {rd}, r0, {done}")),
            }
            let tb = self.expr(ctx, b, d)?;
            if !tb.is_int_like() {
                return cerr(line, "logical operand must be an integer");
            }
            self.emit(&format!("sne {rd}, {rd}, 0"));
            self.emit_label(&done);
            return Ok(Type::Int);
        }

        let ta = self.expr(ctx, a, d)?;
        // Immediate peephole for integer ops with literal rhs.
        if ta.is_int_like() {
            if let ExprKind::IntLit(c) = b.kind {
                if let Some(t) = self.int_op_imm(line, op, &ta, c, d)? {
                    return Ok(t);
                }
            }
        }
        let rb = reg(d + 1)?;
        let tb = self.expr(ctx, b, d + 1)?;
        match (ta.is_int_like(), tb.is_int_like()) {
            (true, true) => {
                // Pointer arithmetic scaling.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if ta.is_ptr() && !tb.is_ptr() {
                        let s = self.sizeof_pointee(&ta, line)?;
                        if s != 1 {
                            self.emit(&format!("mul {rb}, {rb}, {s}"));
                        }
                        let mn = if op == BinOp::Add { "add" } else { "sub" };
                        self.emit(&format!("{mn} {rd}, {rd}, {rb}"));
                        return Ok(ta);
                    }
                    if tb.is_ptr() && !ta.is_ptr() && op == BinOp::Add {
                        let s = self.sizeof_pointee(&tb, line)?;
                        if s != 1 {
                            self.emit(&format!("mul {rd}, {rd}, {s}"));
                        }
                        self.emit(&format!("add {rd}, {rd}, {rb}"));
                        return Ok(tb);
                    }
                    if ta.is_ptr() && tb.is_ptr() && op == BinOp::Sub {
                        let s = self.sizeof_pointee(&ta, line)?;
                        self.emit(&format!("sub {rd}, {rd}, {rb}"));
                        if s != 1 {
                            self.emit(&format!("div {rd}, {rd}, {s}"));
                        }
                        return Ok(Type::Int);
                    }
                }
                if op == BinOp::Ge {
                    // a >= b  ==  b <= a (sle with swapped operands).
                    self.emit(&format!("sle {rd}, {rb}, {rd}"));
                    return Ok(Type::Int);
                }
                let mn = int_mnemonic(op, line)?;
                self.emit(&format!("{mn} {rd}, {rd}, {rb}"));
                let result = if is_comparison(op) {
                    Type::Int
                } else if ta.is_ptr() {
                    ta
                } else if tb.is_ptr() {
                    tb
                } else {
                    Type::Int
                };
                Ok(result)
            }
            (false, false) => {
                let text = match op {
                    BinOp::Add => format!("fadd {rd}, {rd}, {rb}"),
                    BinOp::Sub => format!("fsub {rd}, {rd}, {rb}"),
                    BinOp::Mul => format!("fmul {rd}, {rd}, {rb}"),
                    BinOp::Div => format!("fdiv {rd}, {rd}, {rb}"),
                    BinOp::Lt => format!("flt {rd}, {rd}, {rb}"),
                    BinOp::Le => format!("fle {rd}, {rd}, {rb}"),
                    BinOp::Gt => format!("flt {rd}, {rb}, {rd}"),
                    BinOp::Ge => format!("fle {rd}, {rb}, {rd}"),
                    BinOp::Eq => format!("feq {rd}, {rd}, {rb}"),
                    BinOp::Ne => {
                        self.emit(&format!("feq {rd}, {rd}, {rb}"));
                        format!("seq {rd}, {rd}, 0")
                    }
                    _ => return cerr(line, "operator not defined for floats"),
                };
                self.emit(&text);
                Ok(if is_comparison(op) {
                    Type::Int
                } else {
                    Type::Float
                })
            }
            _ => cerr(line, "mixed int/float operands; cast explicitly with `as`"),
        }
    }

    /// Integer op with immediate rhs; returns `None` when not applicable
    /// (pointer scaling needed with non-trivial size).
    fn int_op_imm(
        &mut self,
        line: usize,
        op: BinOp,
        ta: &Type,
        c: i64,
        d: usize,
    ) -> Result<Option<Type>, CompileError> {
        let rd = reg(d)?;
        if matches!(op, BinOp::Add | BinOp::Sub) && ta.is_ptr() {
            let s = self.sizeof_pointee(ta, line)? as i64;
            let mn = if op == BinOp::Add { "add" } else { "sub" };
            self.emit(&format!("{mn} {rd}, {rd}, {}", c * s));
            return Ok(Some(ta.clone()));
        }
        let mn = match int_mnemonic(op, line) {
            Ok(m) => m,
            Err(_) => return Ok(None),
        };
        self.emit(&format!("{mn} {rd}, {rd}, {c}"));
        Ok(Some(if is_comparison(op) {
            Type::Int
        } else {
            ta.clone()
        }))
    }

    // ----- calls ----------------------------------------------------------

    fn call(
        &mut self,
        ctx: &mut FnCtx,
        line: usize,
        callee: &Expr,
        args: &[Expr],
        d: usize,
    ) -> Result<Type, CompileError> {
        if let ExprKind::Name(n) = &callee.kind {
            if is_builtin(n) {
                return self.builtin(ctx, line, n, args, d);
            }
            if let Some(sig) = self.fns.get(n).cloned() {
                if args.len() != sig.params.len() {
                    return cerr(
                        line,
                        format!(
                            "`{n}` takes {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                }
                if ctx.kind == FnKind::Mttop && sig.kind == FnKind::Cpu {
                    return cerr(line, format!("MTTOP code cannot call _CPU_ fn `{n}`"));
                }
                if ctx.kind == FnKind::Cpu && sig.kind == FnKind::Mttop {
                    return cerr(line, format!("CPU code cannot call _MTTOP_ fn `{n}`"));
                }
                for (i, arg) in args.iter().enumerate() {
                    let t = self.expr(ctx, arg, d + i)?;
                    if !compatible(&sig.params[i], &t) {
                        return cerr(
                            arg.line,
                            format!(
                                "argument {} of `{n}`: expected `{}`, got `{t}`",
                                i + 1,
                                sig.params[i]
                            ),
                        );
                    }
                }
                self.emit_call_sequence(d, args.len(), &format!("call {n}"));
                return Ok(sig.ret);
            }
            // Fall through: maybe a local holding a function pointer.
        }
        // Indirect call through a function-pointer value.
        let t = self.expr(ctx, callee, d)?;
        if !t.is_int_like() {
            return cerr(line, "cannot call a float");
        }
        for (i, arg) in args.iter().enumerate() {
            self.expr(ctx, arg, d + 1 + i)?;
        }
        // Shift: callee target at d, args at d+1.. — move args into r1..;
        // keep callee reg for `callr`.
        self.spill_below(d);
        for i in 0..args.len() {
            self.emit(&format!("mv r{}, {}", i + 1, reg(d + 1 + i)?));
        }
        let rc = reg(d)?;
        self.emit(&format!("callr {rc}"));
        self.emit(&format!("mv {}, r1", reg(d)?));
        self.restore_below(d);
        Ok(Type::Int)
    }

    /// Common tail of a direct call: spill live window, move args, call, get
    /// result into `r(8+d)`, restore.
    fn emit_call_sequence(&mut self, d: usize, nargs: usize, call: &str) {
        self.spill_below(d);
        for i in 0..nargs {
            self.emit(&format!("mv r{}, r{}", i + 1, EVAL_BASE + d + i));
        }
        self.emit(call);
        self.emit(&format!("mv r{}, r1", EVAL_BASE + d));
        self.restore_below(d);
    }

    /// Saves r8..r(8+d-1) below the stack pointer around a call.
    fn spill_below(&mut self, d: usize) {
        for i in 0..d {
            self.emit(&format!("st8 r{}, -{}(r30)", EVAL_BASE + i, (i + 1) * 8));
        }
        if d > 0 {
            self.emit(&format!("sub r30, r30, {}", d * 8));
        }
    }

    fn restore_below(&mut self, d: usize) {
        if d > 0 {
            self.emit(&format!("add r30, r30, {}", d * 8));
        }
        for i in 0..d {
            self.emit(&format!("ld8 r{}, -{}(r30)", EVAL_BASE + i, (i + 1) * 8));
        }
    }

    fn builtin(
        &mut self,
        ctx: &mut FnCtx,
        line: usize,
        name: &str,
        args: &[Expr],
        d: usize,
    ) -> Result<Type, CompileError> {
        let rd = reg(d)?;
        let argc = |n: usize| -> Result<(), CompileError> {
            if args.len() == n {
                Ok(())
            } else {
                cerr(
                    line,
                    format!("`{name}` takes {n} arguments, got {}", args.len()),
                )
            }
        };
        let cpu_only = |ctx: &FnCtx| -> Result<(), CompileError> {
            if ctx.kind == FnKind::Cpu {
                Ok(())
            } else {
                cerr(
                    line,
                    format!("`{name}` performs a syscall and is only available in _CPU_ functions"),
                )
            }
        };
        match name {
            // --- atomics (everywhere, §3.2.4) ---
            "atomic_add" | "atomic_exch" => {
                argc(2)?;
                self.expr(ctx, &args[0], d)?;
                self.expr(ctx, &args[1], d + 1)?;
                let mn = if name == "atomic_add" {
                    "amoadd"
                } else {
                    "amoswap"
                };
                self.emit(&format!("{mn} {rd}, ({rd}), {}", reg(d + 1)?));
                Ok(Type::Int)
            }
            "atomic_cas" => {
                argc(3)?;
                self.expr(ctx, &args[0], d)?;
                self.expr(ctx, &args[1], d + 1)?;
                self.expr(ctx, &args[2], d + 2)?;
                self.emit(&format!(
                    "amocas {rd}, ({rd}), {}, {}",
                    reg(d + 1)?,
                    reg(d + 2)?
                ));
                Ok(Type::Int)
            }
            "atomic_inc" | "atomic_dec" => {
                argc(1)?;
                self.expr(ctx, &args[0], d)?;
                let mn = if name == "atomic_inc" {
                    "amoinc"
                } else {
                    "amodec"
                };
                self.emit(&format!("{mn} {rd}, ({rd})"));
                Ok(Type::Int)
            }
            "fence" => {
                argc(0)?;
                self.emit("fence");
                self.emit(&format!("li {rd}, 0"));
                Ok(Type::Int)
            }
            // --- math (everywhere) ---
            "sqrt" | "fabsf" => {
                argc(1)?;
                let t = self.expr(ctx, &args[0], d)?;
                if t.is_int_like() {
                    return cerr(line, format!("`{name}` needs a float"));
                }
                let mn = if name == "sqrt" { "fsqrt" } else { "fabs" };
                self.emit(&format!("{mn} {rd}, {rd}"));
                Ok(Type::Float)
            }
            "fminf" | "fmaxf" => {
                argc(2)?;
                self.expr(ctx, &args[0], d)?;
                self.expr(ctx, &args[1], d + 1)?;
                let mn = if name == "fminf" { "fmin" } else { "fmax" };
                self.emit(&format!("{mn} {rd}, {rd}, {}", reg(d + 1)?));
                Ok(Type::Float)
            }
            // --- OS services (CPU only) ---
            "malloc" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::MALLOC, &args[0], d)?;
                Ok(Type::Int.ptr_to())
            }
            "free" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::FREE, &args[0], d)?;
                Ok(Type::Int)
            }
            "print_int" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::PRINT_INT, &args[0], d)?;
                Ok(Type::Int)
            }
            "print_float" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::PRINT_FLOAT, &args[0], d)?;
                Ok(Type::Int)
            }
            "mifd_launch" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::MIFD_LAUNCH, &args[0], d)?;
                Ok(Type::Int)
            }
            "munmap" => {
                argc(1)?;
                cpu_only(ctx)?;
                self.syscall1(ctx, ccsvm_isa::sys::MUNMAP, &args[0], d)?;
                Ok(Type::Int)
            }
            "spawn_cthread" => {
                argc(2)?;
                cpu_only(ctx)?;
                self.expr(ctx, &args[0], d)?;
                self.expr(ctx, &args[1], d + 1)?;
                self.emit(&format!("mv r2, {rd}"));
                self.emit(&format!("mv r3, {}", reg(d + 1)?));
                self.emit(&format!("li r1, {}", ccsvm_isa::sys::SPAWN_CTHREAD));
                self.emit("syscall");
                self.emit(&format!("mv {rd}, r1"));
                Ok(Type::Int)
            }
            "exit_thread" => {
                argc(0)?;
                cpu_only(ctx)?;
                self.emit(&format!("li r1, {}", ccsvm_isa::sys::EXIT_THREAD));
                self.emit("syscall");
                Ok(Type::Int)
            }
            other => cerr(line, format!("unknown builtin `{other}`")),
        }
    }

    fn syscall1(
        &mut self,
        ctx: &mut FnCtx,
        num: u64,
        arg: &Expr,
        d: usize,
    ) -> Result<(), CompileError> {
        let rd = reg(d)?;
        self.expr(ctx, arg, d)?;
        self.emit(&format!("mv r2, {rd}"));
        self.emit(&format!("li r1, {num}"));
        self.emit("syscall");
        self.emit(&format!("mv {rd}, r1"));
        Ok(())
    }
}

fn reg(d: usize) -> Result<String, CompileError> {
    if d >= EVAL_REGS {
        return cerr(0, "expression too deep (more than 20 live temporaries)");
    }
    Ok(format!("r{}", EVAL_BASE + d))
}

fn is_comparison(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

fn int_mnemonic(op: BinOp, line: usize) -> Result<&'static str, CompileError> {
    Ok(match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Lt => "slt",
        BinOp::Le => "sle",
        BinOp::Gt => "sgt",
        // Ge needs swapped operands (handled by the callers).
        BinOp::Ge => return cerr(line, "internal: Ge requires operand swap"),
        BinOp::Eq => "seq",
        BinOp::Ne => "sne",
        _ => return cerr(line, "operator not valid here"),
    })
}

/// Records every name that appears under `&` anywhere in the statements
/// (conservatively by name: any `&x` forces all locals named `x` in this
/// function into the frame).
fn collect_addr_taken_stmts(stmts: &[Stmt], out: &mut std::collections::HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } => collect_addr_taken_expr(init, out),
            Stmt::Assign { target, value, .. } => {
                collect_addr_taken_expr(target, out);
                collect_addr_taken_expr(value, out);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                collect_addr_taken_expr(cond, out);
                collect_addr_taken_stmts(then_blk, out);
                collect_addr_taken_stmts(else_blk, out);
            }
            Stmt::While { cond, body } => {
                collect_addr_taken_expr(cond, out);
                collect_addr_taken_stmts(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    collect_addr_taken_expr(v, out);
                }
            }
            Stmt::ExprStmt(e) => collect_addr_taken_expr(e, out),
            Stmt::Block(b) => collect_addr_taken_stmts(b, out),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }
}

fn collect_addr_taken_expr(e: &Expr, out: &mut std::collections::HashSet<String>) {
    match &e.kind {
        ExprKind::AddrOf(inner) => {
            if let ExprKind::Name(n) = &inner.kind {
                out.insert(n.clone());
            }
            collect_addr_taken_expr(inner, out);
        }
        ExprKind::Bin(_, a, b) | ExprKind::Index(a, b) => {
            collect_addr_taken_expr(a, out);
            collect_addr_taken_expr(b, out);
        }
        ExprKind::Un(_, a) | ExprKind::Field(a, _) | ExprKind::Cast(a, _) => {
            collect_addr_taken_expr(a, out)
        }
        ExprKind::Call(c, args) => {
            collect_addr_taken_expr(c, out);
            for a in args {
                collect_addr_taken_expr(a, out);
            }
        }
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Name(_) | ExprKind::SizeOf(_) => {}
    }
}

fn compatible(want: &Type, got: &Type) -> bool {
    match (want, got) {
        (Type::Float, Type::Float) => true,
        (Type::Float, _) | (_, Type::Float) => false,
        // All int-like types (ints, any pointers) interconvert freely,
        // C-style.
        _ => true,
    }
}

fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "atomic_add"
            | "atomic_cas"
            | "atomic_inc"
            | "atomic_dec"
            | "atomic_exch"
            | "fence"
            | "sqrt"
            | "fabsf"
            | "fminf"
            | "fmaxf"
            | "malloc"
            | "free"
            | "print_int"
            | "print_float"
            | "mifd_launch"
            | "munmap"
            | "spawn_cthread"
            | "exit_thread"
            | "sizeof"
    )
}
