//! XC abstract syntax.

/// An XC type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer (also used for booleans).
    Int,
    /// IEEE-754 double.
    Float,
    /// Pointer to `pointee`.
    Ptr(Box<Type>),
    /// A named struct (only valid behind a pointer).
    Struct(String),
}

impl Type {
    /// Pointer-to-self convenience.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether values of this type live in a register as an integer
    /// (ints, pointers, booleans).
    pub fn is_int_like(&self) -> bool {
        !matches!(self, Type::Float)
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Ptr(p) => write!(f, "{p}*"),
            Type::Struct(n) => write!(f, "{n}"),
        }
    }
}

/// Which core type a function is compiled for (paper §4: `_CPU_` and
/// `_MTTOP_` markers; unmarked functions are shared).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FnKind {
    /// Runs on CPU cores; may use OS builtins.
    Cpu,
    /// Runs on MTTOP cores; OS builtins are rejected.
    Mttop,
    /// Callable from both; OS builtins are rejected.
    Shared,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    Deref,
}

/// An expression, tagged with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    pub(crate) line: usize,
    pub(crate) kind: ExprKind,
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    /// Variable, global, const, or function name.
    Name(String),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
    /// `&lvalue`.
    AddrOf(Box<Expr>),
    /// `base[index]` (scaled by pointee size).
    Index(Box<Expr>, Box<Expr>),
    /// `base->field` (base must be a struct pointer).
    Field(Box<Expr>, String),
    /// `callee(args)`; callee is a name (direct, builtin) or expression
    /// (indirect through a function pointer).
    Call(Box<Expr>, Vec<Expr>),
    /// `expr as type`.
    Cast(Box<Expr>, Type),
    /// `sizeof(TypeName)`.
    SizeOf(Type),
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::enum_variant_names)] // `ExprStmt` reads better than bare `Expr`
pub(crate) enum Stmt {
    Let {
        line: usize,
        name: String,
        ty: Option<Type>,
        init: Expr,
    },
    Assign {
        line: usize,
        target: Expr,
        value: Expr,
    },
    If {
        cond: Expr,
        then_blk: Vec<Stmt>,
        else_blk: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    Return {
        line: usize,
        value: Option<Expr>,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
    ExprStmt(Expr),
    Block(Vec<Stmt>),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FnDef {
    pub line: usize,
    pub kind: FnKind,
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret: Type,
    pub body: Vec<Stmt>,
}

/// A struct definition (fields are 8 bytes each, in declaration order).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct StructDef {
    pub name: String,
    pub fields: Vec<(String, Type)>,
}

/// Top-level items.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Item {
    Struct(StructDef),
    Global {
        line: usize,
        name: String,
        ty: Type,
    },
    Const {
        line: usize,
        name: String,
        value: Expr,
    },
    Fn(FnDef),
}
