//! The **xthreads** programming model (paper §4).
//!
//! xthreads extends pthreads so a CPU thread can spawn threads on MTTOP
//! cores. This crate provides the runtime library — written in XC, exactly
//! as the paper's library sits above its ISA — implementing Table 1:
//!
//! | Called by | Function | Paper name |
//! |---|---|---|
//! | CPU | `xt_create_mthread(f, args, first, last)` | `create_mthread` |
//! | CPU | `xt_wait(cond, first, last)` | `wait` |
//! | CPU | `xt_signal(cond, first, last)` | `signal` |
//! | CPU | `xt_barrier_cpu(bar, sense, first, last)` | `cpu_mttop_barrier` |
//! | CPU | `xt_malloc_server(req, resp, n, done, first, last)` | `wait(…, waitCondition=malloc)` |
//! | MTTOP | `xt_msignal(cond, tid)` | `signal` |
//! | MTTOP | `xt_mwait(cond, tid)` | `wait` |
//! | MTTOP | `xt_barrier_mttop(bar, sense, tid)` | `cpu_mttop_barrier` |
//! | MTTOP | `xt_mttop_malloc(req, resp, tid, size)` | `mttop_malloc` |
//!
//! All synchronization is through ordinary coherent shared memory — that is
//! the paper's whole point: under CCSVM, wait/signal/barrier are a handful
//! of loads, stores, and atomics instead of driver round-trips.
//!
//! `create_mthread` performs the §4.3 `write` syscall to the MIFD with a
//! task descriptor `{entry_pc, args_ptr, first_tid, last_tid}` (the kernel
//! appends the CR3). `mttop_malloc` offloads allocation to a CPU thread
//! running [`the malloc server`](XTHREADS_LIB) (§5.3.2).
//!
//! Use [`link`] to concatenate the library with user source, and
//! [`build`] to produce a runnable [`ccsvm_isa::Program`].

use ccsvm_isa::Program;
use ccsvm_xcc::CompileError;

/// Condition-variable protocol values (Table 1's `Ready`,
/// `WaitingOnMTTOP`, `WaitingOnCPU`).
pub mod cond {
    /// Element is signalled.
    pub const READY: u64 = 1;
    /// A CPU thread is waiting on this element.
    pub const WAITING_ON_MTTOP: u64 = 2;
    /// An MTTOP thread is waiting on this element.
    pub const WAITING_ON_CPU: u64 = 3;
}

/// The xthreads runtime library, in XC.
pub const XTHREADS_LIB: &str = r#"
// ---- xthreads runtime library (paper Table 1) ----------------------------
const XT_READY = 1;
const XT_WAIT_MTTOP = 2;
const XT_WAIT_CPU = 3;

// create_mthread: spawn MTTOP threads first..=last running f(tid, args).
// Builds the {entry, args, first, last} task descriptor in consecutive
// stack slots (xcc allocates `let` slots in order) and performs the write
// syscall to the MIFD. Returns 0, or 1 if the MIFD set its error register.
_CPU_ fn xt_create_mthread(f: int, args: int, first: int, last: int) -> int {
    let d0 = f;
    let d1 = args;
    let d2 = first;
    let d3 = last;
    // Taking each address pins all four to consecutive frame slots (xcc
    // register-allocates locals otherwise).
    &d1; &d2; &d3;
    return mifd_launch(&d0 as int);
}

// CPU-side wait: mark unsignalled elements WaitingOnMTTOP, then spin until
// every element in [first, last] reads Ready; elements reset to 0 for reuse.
_CPU_ fn xt_wait(cond: int*, first: int, last: int) {
    for (let i = first; i <= last; i = i + 1) {
        atomic_cas(cond + i, 0, XT_WAIT_MTTOP);
    }
    for (let i = first; i <= last; i = i + 1) {
        while (cond[i] != XT_READY) { }
        cond[i] = 0;
    }
}

// CPU-side signal: release MTTOP threads waiting on [first, last].
_CPU_ fn xt_signal(cond: int*, first: int, last: int) {
    for (let i = first; i <= last; i = i + 1) {
        cond[i] = XT_READY;
    }
}

// MTTOP-side signal of the caller's own element.
_MTTOP_ fn xt_msignal(cond: int*, tid: int) {
    cond[tid] = XT_READY;
}

// MTTOP-side wait on the caller's own element.
_MTTOP_ fn xt_mwait(cond: int*, tid: int) {
    atomic_cas(cond + tid, 0, XT_WAIT_CPU);
    while (cond[tid] != XT_READY) { }
    cond[tid] = 0;
}

// Global CPU+MTTOP barrier, MTTOP side: publish arrival (tagged with the
// epoch so no clearing pass is needed), then wait for the sense to advance.
// The sense must be read before publishing (SC makes this correct).
_MTTOP_ fn xt_barrier_mttop(bar: int*, sense: int*, tid: int) {
    let s = *sense;
    bar[tid] = s + 1;
    while (*sense == s) { }
}

// Global CPU+MTTOP barrier, CPU side: wait for every arrival of this epoch,
// then advance the sense to release everyone. Epoch-tagged arrivals keep the
// CPU's pass read-only (no invalidation storm from clearing entries).
_CPU_ fn xt_barrier_cpu(bar: int*, sense: int*, first: int, last: int) {
    let s = *sense;
    for (let i = first; i <= last; i = i + 1) {
        while (bar[i] != s + 1) { }
    }
    *sense = s + 1;
}

// mttop_malloc, MTTOP side: post the request size and spin for the pointer
// (paper 5.3.2: "offloads the malloc to a CPU by having the CPU wait for
// the MTTOP threads to signal").
_MTTOP_ fn xt_mttop_malloc(req: int*, resp: int*, tid: int, size: int) -> int {
    resp[tid] = 0;
    req[tid] = size;
    while (resp[tid] == 0) { }
    req[tid] = 0;
    return resp[tid];
}

// Userspace allocator backing the malloc server: bump allocation from
// 64 KiB slabs, one kernel malloc per slab — like a real libc, where small
// mallocs do not enter the kernel.
global xt_arena_cur: int;
global xt_arena_end: int;

_CPU_ fn xt_malloc(n: int) -> int {
    if (xt_arena_cur + n > xt_arena_end) {
        xt_arena_cur = malloc(65536) as int;
        xt_arena_end = xt_arena_cur + 65536;
    }
    let p = xt_arena_cur;
    xt_arena_cur = xt_arena_cur + n;
    return p;
}

// mttop_malloc, CPU side: service allocation requests from n MTTOP threads
// until every element of done[first..=last] is Ready (the waitCondition
// form of Table 1's wait).
_CPU_ fn xt_malloc_server(req: int*, resp: int*, n: int, done: int*, first: int, last: int) {
    let finished = 0;
    while (finished == 0) {
        for (let i = 0; i < n; i = i + 1) {
            let sz = req[i];
            if (sz != 0) {
                req[i] = 0;
                resp[i] = xt_malloc(sz);
            }
        }
        finished = 1;
        for (let j = first; j <= last; j = j + 1) {
            if (done[j] != XT_READY) { finished = 0; }
        }
    }
    for (let j = first; j <= last; j = j + 1) {
        done[j] = 0;
    }
}
// ---- end xthreads runtime library -----------------------------------------
"#;

/// Concatenates the runtime library with user source (library first, so user
/// line numbers in errors are offset by the library length — errors report
/// the combined line).
pub fn link(user_source: &str) -> String {
    format!("{XTHREADS_LIB}\n{user_source}")
}

/// Compiles user source linked against the xthreads runtime into a runnable
/// program.
///
/// # Errors
///
/// Propagates compiler errors (line numbers refer to the linked source; the
/// library occupies the first [`lib_lines`] lines).
pub fn build(user_source: &str) -> Result<Program, CompileError> {
    ccsvm_xcc::compile_to_program(&link(user_source))
}

/// Number of lines the runtime library occupies in linked source (for
/// mapping error lines back to user code).
pub fn lib_lines() -> usize {
    XTHREADS_LIB.lines().count() + 1
}

/// Byte layout of the task descriptor passed to the MIFD write syscall
/// (§4.3): `{entry_pc, args_ptr, first_tid, last_tid}`, 8 bytes each. The
/// kernel appends the CR3 when forwarding to the device.
pub const TASK_DESC_WORDS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use ccsvm_isa::{FlatMem, FuncOs, Interp};

    #[test]
    fn library_compiles_alone() {
        let p = ccsvm_xcc::compile_to_program(XTHREADS_LIB).unwrap();
        for f in [
            "xt_create_mthread",
            "xt_wait",
            "xt_signal",
            "xt_msignal",
            "xt_mwait",
            "xt_barrier_mttop",
            "xt_barrier_cpu",
            "xt_mttop_malloc",
            "xt_malloc_server",
            "__kexit",
        ] {
            assert!(p.lookup(f).is_some(), "missing {f}");
        }
    }

    #[test]
    fn vecadd_runs_functionally() {
        // The paper's Figure 4 program, ported to XC, run on the functional
        // interpreter (synchronous launches).
        let p = build(
            "struct Args { v1: int*; v2: int*; sum: int*; done: int*; }
             _MTTOP_ fn add(tid: int, a: Args*) {
                 a->sum[tid] = a->v1[tid] + a->v2[tid];
                 xt_msignal(a->done, tid);
             }
             _CPU_ fn main() -> int {
                 let n = 64;
                 let a: Args* = malloc(sizeof(Args));
                 a->v1 = malloc(n * 8);
                 a->v2 = malloc(n * 8);
                 a->sum = malloc(n * 8);
                 a->done = malloc(n * 8);
                 for (let i = 0; i < n; i = i + 1) {
                     a->v1[i] = i;
                     a->v2[i] = i * 10;
                     a->done[i] = 0;
                 }
                 xt_create_mthread(add, a as int, 0, n - 1);
                 xt_wait(a->done, 0, n - 1);
                 let total = 0;
                 for (let i = 0; i < n; i = i + 1) { total = total + a->sum[i]; }
                 return total;
             }",
        )
        .unwrap();
        let mut mem = FlatMem::new();
        let mut os = FuncOs::new();
        let mut t = Interp::new(p.entry("__start"), 0);
        t.run(&p, &mut mem, &mut os, 10_000_000).unwrap();
        let expect: u64 = (0..64).map(|i| i + i * 10).sum();
        assert_eq!(t.regs[1], expect);
    }

    #[test]
    fn descriptor_layout_matches_convention() {
        // xt_create_mthread relies on consecutive `let` slots; verify against
        // the functional OS's launch decoding by actually launching.
        let p = build(
            "_MTTOP_ fn k(tid: int, args: int*) { args[tid] = tid + 100; }
             _CPU_ fn main() -> int {
                 let out: int* = malloc(8 * 8);
                 xt_create_mthread(k, out as int, 2, 5);
                 return out[5];
             }",
        )
        .unwrap();
        let mut mem = FlatMem::new();
        let mut os = FuncOs::new();
        let mut t = Interp::new(p.entry("__start"), 0);
        t.run(&p, &mut mem, &mut os, 1_000_000).unwrap();
        assert_eq!(t.regs[1], 105);
        // tid 0,1 not launched; 2..=5 were.
        let base = ccsvm_isa::abi::HEAP_BASE;
        assert_eq!(mem.read(base, 8), 0);
        assert_eq!(mem.read(base + 2 * 8, 8), 102);
    }

    #[test]
    fn link_and_lib_lines_consistent() {
        let linked = link("fn foo() { }");
        assert!(linked.contains("xt_create_mthread"));
        assert!(linked.ends_with("fn foo() { }"));
        assert!(lib_lines() > 10);
    }
}
