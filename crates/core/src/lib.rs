//! `ccsvm` — the paper's contribution: a heterogeneous multicore chip whose
//! CPU and MTTOP cores are **full peers in cache-coherent shared virtual
//! memory** (Hechtman & Sorin, ISPASS 2013, §3).
//!
//! A [`Machine`] assembles, per Table 2 / Figure 1:
//!
//! * 4 in-order CPU cores (2.9 GHz, max IPC 0.5, 64 KB L1, 64-entry TLB),
//! * 10 SIMT MTTOP cores (600 MHz, 16 warps × 8 lanes, 16 KB L1, TLB +
//!   hardware walker),
//! * the MIFD (task launch via a `write` syscall, round-robin warp
//!   assignment, page-fault forwarding, error register),
//! * a banked, inclusive, shared 4 MB L2 with the MOESI directory embedded
//!   in its blocks,
//! * a 2D torus NoC (12 GB/s links) connecting everything,
//! * 100 ns DRAM behind the L2 banks, and
//! * `OsLite`: frame allocation, demand paging, page-fault handling
//!   (including MTTOP faults forwarded through the MIFD), TLB shootdown
//!   (selective CPU IPIs, conservative MTTOP flush-all), guest `malloc`,
//!   and CPU thread spawn.
//!
//! Programs are XC sources compiled by `ccsvm-xcc` against the xthreads
//! runtime (`ccsvm_xthreads::build`); [`Machine::run`] boots `main` on CPU 0
//! and simulates until the process exits, producing a [`RunReport`] with the
//! runtime, printed output, and every component's counters (including the
//! DRAM-access counts behind the paper's Figure 9).
//!
//! # Examples
//!
//! ```
//! use ccsvm::{Machine, SystemConfig};
//!
//! let program = ccsvm_xthreads::build(
//!     "_CPU_ fn main() -> int { print_int(6 * 7); return 0; }",
//! ).unwrap();
//! let mut m = Machine::new(SystemConfig::paper_default(), program);
//! let report = m.run();
//! assert_eq!(report.printed, ["42"]);
//! assert!(report.time.as_ns() > 0.0);
//! ```

mod config;
mod machine;
mod triage;

pub use config::{OsCosts, SpeculationConfig, SystemConfig};
pub use machine::{config_hash, DiagnosticDump, HostPhases, Machine, Outcome, RunReport};
pub use triage::{
    replay_bundle, run_with_triage, ReplayBundle, TriageError, TriageResult, BUNDLE_MAGIC,
    BUNDLE_VERSION,
};
// Fault-injection configuration, re-exported so harnesses can fill in
// `SystemConfig::fault` without depending on the engine crate directly.
pub use ccsvm_engine::{
    DirTimeoutConfig, DramFaultConfig, FaultConfig, NocFaultConfig, Time, TlbFaultConfig,
    WatchdogConfig,
};
// Coherence-sanitizer configuration and violation types (DESIGN §9),
// re-exported for harnesses and the triage/replay tooling.
pub use ccsvm_engine::{
    EvRecord, InvariantId, InvariantMask, Mutation, MutationKind, SanitizerConfig, Violation,
};
// Snapshot error type and schema version, re-exported so harnesses can
// handle checkpoint/restore failures without depending on the snap crate.
pub use ccsvm_snap::{SnapError, SCHEMA_VERSION as SNAP_SCHEMA_VERSION};
// Coherence-protocol identity and catalogue (DESIGN §13), re-exported so
// harnesses can set `SystemConfig::protocol` and query per-protocol
// invariant masks without depending on the mem crate directly.
pub use ccsvm_mem::{protocol, CoherenceProtocol, ProtocolKind};
// Decoded-superblock cache counters (DESIGN §11), re-exported so perf
// harnesses can report [`Machine::sb_stats`] without an isa dependency.
pub use ccsvm_isa::SbStats;
// Speculative epoch executor counters (DESIGN §12), re-exported so perf
// harnesses can report [`Machine::spec_stats`] alongside the phases.
pub use ccsvm_engine::SpecStats;
