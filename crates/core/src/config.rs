//! System configuration (the paper's Table 2, CCSVM column).

use ccsvm_cpu::CpuConfig;
use ccsvm_engine::{FaultConfig, SanitizerConfig, Time};
use ccsvm_mem::{CacheConfig, DramConfig, ProtocolKind, WritePolicy};
use ccsvm_mttop::MttopConfig;
use ccsvm_noc::NocConfig;

/// Modeled operating-system service costs. The paper runs unmodified Linux
/// 2.6; these constants stand in for the handler paths its evaluation
/// exercises (documented in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OsCosts {
    /// Kernel entry/exit + simple service (malloc bookkeeping, MIFD write).
    pub syscall: Time,
    /// Page-fault trap + handler, excluding the PTE stores (those are
    /// simulated as real coherent stores).
    pub page_fault: Time,
    /// Per-target IPI delivery/handling during TLB shootdown.
    pub ipi: Time,
    /// MIFD per-chunk dispatch occupancy.
    pub mifd_chunk: Time,
}

impl OsCosts {
    /// Defaults calibrated to 2011-class Linux (see EXPERIMENTS.md).
    pub fn default_costs() -> OsCosts {
        OsCosts {
            syscall: Time::from_ns(400),
            page_fault: Time::from_ns(800),
            ipi: Time::from_ns(500),
            mifd_chunk: Time::from_ns(20),
        }
    }
}

/// Speculative epoch executor knobs (DESIGN §12). Host-perf only, like
/// `sim_threads`: changing any of these never changes simulated behavior —
/// `RunReport`s stay bit-identical — only how much host parallelism the
/// fork-join executor can mine out of the event queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// Execute MTTOP batches from *different* timestamps optimistically,
    /// with undo-log rollback on conflict. Only consulted when
    /// `sim_threads > 1`; the serial loop never speculates.
    pub enabled: bool,
    /// Maximum members (live MTTOP batch events) claimed into one epoch.
    pub max_epoch: usize,
    /// Event-queue scan budget when forming an epoch: how many queued
    /// entries formation may inspect before giving up.
    pub max_scan: usize,
    /// Per-member undo-journal budget in cache sets; past this the journal
    /// falls back to a full L1 snapshot (the PR-4 machinery).
    pub undo_sets: usize,
}

impl Default for SpeculationConfig {
    fn default() -> SpeculationConfig {
        SpeculationConfig {
            enabled: true,
            max_epoch: 16,
            max_scan: 64,
            undo_sets: 24,
        }
    }
}

/// Full-chip configuration. [`SystemConfig::paper_default`] reproduces the
/// Table 2 CCSVM column.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of CPU cores.
    pub n_cpus: usize,
    /// Number of MTTOP cores.
    pub n_mttops: usize,
    /// CPU core parameters.
    pub cpu: CpuConfig,
    /// MTTOP core parameters (`ctx_base` is filled in per core).
    pub mttop: MttopConfig,
    /// CPU L1 geometry (64 KB, 4-way).
    pub cpu_l1: CacheConfig,
    /// CPU L1 hit latency (2 CPU cycles).
    pub cpu_l1_hit: Time,
    /// CPU L1 MSHRs.
    pub cpu_mshrs: usize,
    /// MTTOP L1 geometry (16 KB, 4-way).
    pub mttop_l1: CacheConfig,
    /// MTTOP L1 hit latency (1 MTTOP cycle).
    pub mttop_l1_hit: Time,
    /// MTTOP L1 MSHRs (one per two warps by default).
    pub mttop_mshrs: usize,
    /// L1 store policy (write-back; write-through for the §6.1 ablation).
    pub l1_write_policy: WritePolicy,
    /// Coherence protocol (the paper's directory MOESI by default; snooping
    /// MESI and Dragon write-update for the cross-protocol evaluation).
    /// Participates in the config hash: snapshots from one protocol refuse
    /// to restore into another.
    pub protocol: ProtocolKind,
    /// Number of shared-L2 banks.
    pub l2_banks: usize,
    /// Per-bank geometry (4 × 1 MB, 16-way).
    pub l2_bank: CacheConfig,
    /// L2 bank access latency (≈10 CPU cycles ≈ 2 MTTOP cycles).
    pub l2_latency: Time,
    /// DRAM parameters (100 ns).
    pub dram: DramConfig,
    /// Interconnect parameters (12 GB/s links).
    pub noc: NocConfig,
    /// Torus shape (cols, rows); must fit CPUs+banks+MIFD+MTTOPs.
    pub torus: (usize, usize),
    /// OS cost model.
    pub os: OsCosts,
    /// Shootdown policy for MTTOP TLBs: the paper's conservative choice is a
    /// full flush ("a simple, viable option", §3.2.1); selective
    /// invalidation is the paper's suggested refinement, implemented here as
    /// an extension/ablation.
    pub mttop_selective_shootdown: bool,
    /// Physical pool handed to OsLite: `[base, end)`.
    pub phys_pool: (u64, u64),
    /// Hard wall-clock limit for a run (deadlock/runaway guard).
    pub max_sim_time: Time,
    /// Fault injection and forward-progress watchdog. Defaults to all
    /// injectors off (bit-identical to a fault-free build) with the
    /// watchdog armed.
    pub fault: FaultConfig,
    /// Coherence sanitizer: always-on invariant checking over mem/noc/vm
    /// (DESIGN §9). Off by default; enabling it never changes simulated
    /// behavior — reports stay bit-identical — it only *observes* and, on a
    /// violation, aborts the run with [`crate::Outcome::InvariantViolation`].
    pub sanitizer: SanitizerConfig,
    /// Host worker threads for intra-run core-batch execution. `1` (the
    /// default) runs the serial reference event loop; `N > 1` runs the
    /// deterministic fork-join executor, which produces bit-identical
    /// results at every thread count (see DESIGN.md §7).
    pub sim_threads: usize,
    /// Record a host wall-clock breakdown per run phase (core-exec, uncore,
    /// merge) — perf-artifact telemetry; adds two `Instant` reads per batch,
    /// so it's off by default and benchmarks enable it on a separate run.
    pub host_profile: bool,
    /// Decoded-superblock cache on CPU and MTTOP cores (DESIGN §11). Pure
    /// host-perf knob, like `sim_threads`: disabling it (`--no-sb-cache`)
    /// never changes simulated behavior — `RunReport`s stay bit-identical —
    /// it only ablates the host-side decoded-dispatch fast path.
    pub sb_cache: bool,
    /// Cross-timestamp speculative epoch executor (DESIGN §12). Host-perf
    /// knobs; never change simulated results.
    pub speculation: SpeculationConfig,
}

impl SystemConfig {
    /// The Table 2 CCSVM system: 4 CPUs, 10 MTTOPs, 4 MB shared L2, 2D torus,
    /// 2 GB DRAM @ 100 ns.
    pub fn paper_default() -> SystemConfig {
        SystemConfig {
            n_cpus: 4,
            n_mttops: 10,
            cpu: CpuConfig::paper_ccsvm(),
            mttop: MttopConfig::paper_ccsvm(0),
            cpu_l1: CacheConfig::from_capacity(64 * 1024, 4),
            cpu_l1_hit: Time::from_ps(690), // 2 cycles @ 2.9 GHz
            cpu_mshrs: 4,
            mttop_l1: CacheConfig::from_capacity(16 * 1024, 4),
            mttop_l1_hit: Time::from_ps(1_667), // 1 cycle @ 600 MHz
            mttop_mshrs: 16, // deep miss queues: latency hiding is the MTTOP point
            l1_write_policy: WritePolicy::WriteBack,
            protocol: ProtocolKind::Directory,
            l2_banks: 4,
            l2_bank: CacheConfig::from_capacity(1024 * 1024, 16),
            l2_latency: Time::from_ps(3_450), // 10 CPU cycles
            dram: DramConfig::paper_default(),
            noc: NocConfig::paper_default(),
            torus: (4, 5),
            os: OsCosts::default_costs(),
            mttop_selective_shootdown: false,
            phys_pool: (0x10_0000, 2 * 1024 * 1024 * 1024),
            max_sim_time: Time::from_ms(30_000),
            fault: FaultConfig::default(),
            sanitizer: SanitizerConfig::default(),
            sim_threads: 1,
            host_profile: false,
            sb_cache: true,
            speculation: SpeculationConfig::default(),
        }
    }

    /// A scaled-down machine for fast unit/integration tests: 2 CPUs,
    /// 2 MTTOPs with 4 warps each, small caches.
    pub fn tiny() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.n_cpus = 2;
        c.n_mttops = 2;
        c.mttop.warps = 32; // 32 single-lane contexts per core = 64 threads
        c.cpu_l1 = CacheConfig::from_capacity(8 * 1024, 2);
        c.mttop_l1 = CacheConfig::from_capacity(8 * 1024, 2);
        c.l2_banks = 2;
        c.l2_bank = CacheConfig::from_capacity(64 * 1024, 4);
        c.torus = (3, 3);
        c.max_sim_time = Time::from_ms(200);
        c
    }

    /// Looks up a named configuration preset. Replay bundles record the
    /// preset name instead of serializing a whole `SystemConfig`; the
    /// snapshot header's config hash catches any drift between the recorded
    /// run and the rebuilt preset.
    pub fn by_preset(name: &str) -> Option<SystemConfig> {
        match name {
            "paper_default" => Some(SystemConfig::paper_default()),
            "tiny" => Some(SystemConfig::tiny()),
            "tiny_brief" => Some(SystemConfig::tiny_brief()),
            "tiny_campaign" => Some(SystemConfig::tiny_campaign()),
            _ => None,
        }
    }

    /// [`SystemConfig::tiny`] with a much shorter `max_sim_time` (100 µs).
    /// Sweep jobs that wedge (spin loops, lost wakeups) hit the deadline and
    /// abort with a typed outcome in well under a host-second, which keeps
    /// retry-then-poison flows and their tests fast. Registered as the
    /// `tiny_brief` preset so replay bundles captured from such jobs rebuild
    /// the exact config.
    pub fn tiny_brief() -> SystemConfig {
        let mut c = SystemConfig::tiny();
        c.max_sim_time = Time::from_us(100);
        c
    }

    /// [`SystemConfig::tiny`] capped at 1 ms of simulated time: the fault
    /// campaign's preset. Solicitation-round recovery trades latency for
    /// loss — at a 5 µs recovery timeout, ~100 dropped probes cost ~500 µs
    /// of re-solicitation, which `tiny_brief`'s 100 µs deadline cannot
    /// absorb (the run would be misclassified as a wedge) while `tiny`'s
    /// 200 ms deadline would let a genuinely wedged cell simulate far too
    /// long. 1 ms bounds a wedge in well under a host-second and still
    /// leaves recovery-heavy cells ~8x headroom.
    pub fn tiny_campaign() -> SystemConfig {
        let mut c = SystemConfig::tiny();
        c.max_sim_time = Time::from_ms(1);
        c
    }

    /// Total MTTOP thread contexts (the MIFD's capacity).
    pub fn mttop_threads(&self) -> u64 {
        (self.n_mttops * self.mttop.warps * self.mttop.lanes) as u64
    }

    /// Nodes required on the torus.
    pub fn nodes_needed(&self) -> usize {
        self.n_cpus + self.n_mttops + self.l2_banks + 1
    }

    /// A Table-2-style description of this configuration.
    pub fn describe(&self) -> String {
        format!(
            "CPU:    {} in-order cores, {:.1} GHz, max IPC {}\n\
             MTTOP:  {} cores, {:.0} MHz, {} warps x {} lanes ({} thread contexts)\n\
             L1:     CPU {} KB {}-way ({} hit); MTTOP {} KB {}-way ({} hit)\n\
             L2:     {} banks x {} KB, {}-way, {} latency, {}\n\
             DRAM:   {} latency, {:.1} B/ns/channel, {} channels\n\
             NoC:    {}x{} torus, {:.0} GB/s links\n",
            self.n_cpus,
            self.cpu.clock.hz() / 1e9,
            self.cpu.cycles_per_instr_den as f64 / self.cpu.cycles_per_instr_num as f64,
            self.n_mttops,
            self.mttop.clock.hz() / 1e6,
            self.mttop.warps,
            self.mttop.lanes,
            self.mttop_threads(),
            self.cpu_l1.capacity() / 1024,
            self.cpu_l1.ways,
            self.cpu_l1_hit,
            self.mttop_l1.capacity() / 1024,
            self.mttop_l1.ways,
            self.mttop_l1_hit,
            self.l2_banks,
            self.l2_bank.capacity() / 1024,
            self.l2_bank.ways,
            self.l2_latency,
            match self.protocol {
                ProtocolKind::Directory => "inclusive, MOESI directory",
                ProtocolKind::MesiSnoop => "non-inclusive, snooping MESI (bank-ordered)",
                ProtocolKind::Dragon => "non-inclusive, Dragon write-update (bank-ordered)",
            },
            self.dram.latency,
            self.dram.bytes_per_ns,
            self.dram.channels,
            self.torus.0,
            self.torus.1,
            self.noc.link_bytes_per_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.n_cpus, 4);
        assert_eq!(c.n_mttops, 10);
        assert_eq!(c.mttop_threads(), 1280); // 10 x 128
        assert_eq!(c.cpu_l1.capacity(), 64 * 1024);
        assert_eq!(c.mttop_l1.capacity(), 16 * 1024);
        assert_eq!(c.l2_banks * c.l2_bank.capacity(), 4 * 1024 * 1024);
        assert_eq!(c.dram.latency, Time::from_ns(100));
        assert!(c.nodes_needed() <= c.torus.0 * c.torus.1);
    }

    #[test]
    fn describe_mentions_key_numbers() {
        let d = SystemConfig::paper_default().describe();
        assert!(d.contains("2.9 GHz"));
        assert!(d.contains("600 MHz"));
        assert!(d.contains("1280"));
        assert!(d.contains("torus"));
    }

    #[test]
    fn tiny_fits_its_torus() {
        let c = SystemConfig::tiny();
        assert!(c.nodes_needed() <= c.torus.0 * c.torus.1);
    }
}
