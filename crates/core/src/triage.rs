//! Automatic failure triage: periodic checkpointing, bisect-to-cycle, and
//! replay bundles (DESIGN §9).
//!
//! [`run_with_triage`] wraps a run in a checkpoint cadence. When the run
//! aborts abnormally it binary-searches simulated time between the last
//! healthy checkpoint and the abort — restoring the checkpoint and running
//! to the midpoint each probe — until it has the exact cycle the failure
//! first manifests, then packs everything needed to reproduce the failure
//! into a self-contained [`ReplayBundle`]: config preset + fault plan +
//! sanitizer knobs + workload source + the nearest pre-failure snapshot +
//! the ring of recent uncore events. `bench --bin replay` feeds such a
//! bundle to [`replay_bundle`], which re-runs it deterministically with the
//! sanitizer forced on.

use ccsvm_engine::{EvRecord, FaultConfig, SanitizerConfig, Time, Violation};
use ccsvm_isa::Program;
use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::machine::{config_hash, Machine, Outcome, RunReport};
use crate::SystemConfig;
use ccsvm_mem::ProtocolKind;

/// File magic identifying a ccsvm replay bundle.
pub const BUNDLE_MAGIC: [u8; 8] = *b"CCSVBNDL";

/// Bundle format version (independent of the snapshot schema version; the
/// embedded snapshot carries its own). v2: `FaultConfig` grew the
/// probe/ack-loss knobs, which flow into the bundle's serialized config.
pub const BUNDLE_VERSION: u32 = 2;

/// A triage failure (distinct from in-simulation outcomes: these mean the
/// triage/replay *machinery* could not do its job).
#[derive(Clone, Debug, PartialEq)]
pub enum TriageError {
    /// The bundle names a config preset this build doesn't know.
    UnknownPreset(String),
    /// The bundled workload source no longer compiles.
    Compile(String),
    /// The bundle or its embedded snapshot failed to decode.
    Snap(SnapError),
}

impl std::fmt::Display for TriageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TriageError::UnknownPreset(p) => write!(f, "unknown config preset {p:?}"),
            TriageError::Compile(e) => write!(f, "bundled workload failed to compile: {e}"),
            TriageError::Snap(e) => write!(f, "bundle decode failed: {e}"),
        }
    }
}

impl std::error::Error for TriageError {}

impl From<SnapError> for TriageError {
    fn from(e: SnapError) -> TriageError {
        TriageError::Snap(e)
    }
}

/// Everything needed to deterministically reproduce a captured failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayBundle {
    /// Config preset name ([`SystemConfig::by_preset`]).
    pub preset: String,
    /// Coherence protocol of the failing run (applied on top of the
    /// preset at replay time — the embedded snapshot refuses any other).
    pub protocol: ProtocolKind,
    /// The fault plan the failing run was injected with.
    pub fault: FaultConfig,
    /// The failing run's sanitizer knobs (incl. any seeded mutation).
    pub sanitizer: SanitizerConfig,
    /// The workload's XC source.
    pub source: String,
    /// Config hash of the failing run (restore double-checks it).
    pub config_hash: u64,
    /// Simulated time of the embedded snapshot.
    pub snapshot_at: Time,
    /// The nearest pre-failure machine snapshot image.
    pub snapshot: Vec<u8>,
    /// Bisected first failing cycle: the earliest simulated time at which
    /// resuming the snapshot manifests the failure.
    pub first_fail: Time,
    /// How the captured run ended.
    pub outcome: Outcome,
    /// The sanitizer violation, when one was identified.
    pub violation: Option<Violation>,
    /// Ring of the last uncore events before the failure (oldest first).
    pub ring: Vec<EvRecord>,
    /// Total uncore events the ring observed (≥ `ring.len()`).
    pub ring_total: u64,
}

impl ReplayBundle {
    /// Serializes the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_raw(&BUNDLE_MAGIC);
        w.put_u32(BUNDLE_VERSION);
        w.put_str(&self.preset);
        w.put_str(self.protocol.as_str());
        self.fault.save(&mut w);
        self.sanitizer.save(&mut w);
        w.put_str(&self.source);
        w.put_u64(self.config_hash);
        w.put_u64(self.snapshot_at.as_ps());
        w.put_bytes(&self.snapshot);
        w.put_u64(self.first_fail.as_ps());
        w.put_u8(self.outcome.snap_tag());
        match &self.violation {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save(&mut w);
            }
        }
        w.put_usize(self.ring.len());
        for rec in &self.ring {
            rec.save(&mut w);
        }
        w.put_u64(self.ring_total);
        w.into_vec()
    }

    /// Decodes a bundle.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapError`] on bad magic/version, truncation, or
    /// any malformed field — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplayBundle, SnapError> {
        let mut r = SnapReader::new(bytes);
        let magic: [u8; 8] = r.get_array()?;
        if magic != BUNDLE_MAGIC {
            return Err(SnapError::Corrupt {
                what: format!("bad bundle magic {magic:02x?}"),
            });
        }
        let version = r.get_u32()?;
        if version != BUNDLE_VERSION {
            return Err(SnapError::Corrupt {
                what: format!("bundle version {version}, this build reads {BUNDLE_VERSION}"),
            });
        }
        let preset = r.get_str()?.to_string();
        let proto_name = r.get_str()?.to_string();
        let protocol = ProtocolKind::parse(&proto_name).ok_or_else(|| SnapError::Corrupt {
            what: format!("bundle names unknown coherence protocol {proto_name:?}"),
        })?;
        let mut fault = FaultConfig::default();
        fault.load(&mut r)?;
        let mut sanitizer = SanitizerConfig::default();
        sanitizer.load(&mut r)?;
        let source = r.get_str()?.to_string();
        let config_hash = r.get_u64()?;
        let snapshot_at = Time::from_ps(r.get_u64()?);
        let snapshot = r.get_bytes()?.to_vec();
        let first_fail = Time::from_ps(r.get_u64()?);
        let outcome = Outcome::from_snap_tag(r.get_u8()?)?;
        let violation = if r.get_bool()? {
            let mut v = Violation::default();
            v.load(&mut r)?;
            Some(v)
        } else {
            None
        };
        let mut ring = Vec::new();
        for _ in 0..r.get_usize()? {
            let mut rec = EvRecord::default();
            rec.load(&mut r)?;
            ring.push(rec);
        }
        let ring_total = r.get_u64()?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after bundle", r.remaining()),
            });
        }
        Ok(ReplayBundle {
            preset,
            protocol,
            fault,
            sanitizer,
            source,
            config_hash,
            snapshot_at,
            snapshot,
            first_fail,
            outcome,
            violation,
            ring,
            ring_total,
        })
    }

    /// Writes the bundle to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on write failure.
    pub fn write(&self, path: &std::path::Path) -> Result<(), SnapError> {
        ccsvm_snap::write_file(path, &self.to_bytes())
    }

    /// Reads and decodes a bundle file.
    ///
    /// # Errors
    ///
    /// As [`ReplayBundle::from_bytes`], plus [`SnapError::Io`].
    pub fn read(path: &std::path::Path) -> Result<ReplayBundle, SnapError> {
        ReplayBundle::from_bytes(&ccsvm_snap::read_file(path)?)
    }
}

/// Result of a triaged run: the report, plus a bundle when it aborted.
#[derive(Clone, Debug)]
pub struct TriageResult {
    /// The (possibly partial) run report.
    pub report: RunReport,
    /// Present when the run aborted abnormally.
    pub bundle: Option<ReplayBundle>,
}

/// Runs `source` under `cfg` with periodic checkpoints every
/// `checkpoint_every` of simulated time. On any abnormal outcome, bisects
/// to the first failing cycle and captures a [`ReplayBundle`].
///
/// `preset` names the `cfg` baseline for the bundle (the caller's `cfg`
/// must be `SystemConfig::by_preset(preset)` modulo `fault`/`sanitizer`
/// knobs — the snapshot's config hash enforces this at replay time).
///
/// # Errors
///
/// [`TriageError::Compile`] when `source` doesn't compile;
/// [`TriageError::Snap`] when a self-captured checkpoint fails to restore
/// during bisection (indicates a snapshot-layer bug).
pub fn run_with_triage(
    cfg: &SystemConfig,
    preset: &str,
    source: &str,
    checkpoint_every: Time,
) -> Result<TriageResult, TriageError> {
    let prog = ccsvm_xthreads::build(source).map_err(|e| TriageError::Compile(format!("{e}")))?;
    let mut m = Machine::new(cfg.clone(), prog.clone());
    let mut ck = m.checkpoint_bytes();
    let mut ck_at = m.now();
    let mut limit = checkpoint_every;
    let report = loop {
        match m.run_until(limit) {
            None => {
                ck = m.checkpoint_bytes();
                ck_at = m.now();
                limit += checkpoint_every;
            }
            Some(r) => break r,
        }
    };
    if report.outcome == Outcome::Completed {
        return Ok(TriageResult {
            report,
            bundle: None,
        });
    }
    let first_fail = bisect(cfg, &prog, &ck, ck_at, report.time)?;
    let (ring, ring_total) = m.ring_events();
    let violation = report.diagnostic.as_ref().and_then(|d| d.violation.clone());
    let bundle = ReplayBundle {
        preset: preset.to_string(),
        protocol: cfg.protocol,
        fault: cfg.fault,
        sanitizer: cfg.sanitizer,
        source: source.to_string(),
        config_hash: config_hash(cfg),
        snapshot_at: ck_at,
        snapshot: ck,
        first_fail,
        outcome: report.outcome,
        violation,
        ring,
        ring_total,
    };
    Ok(TriageResult {
        report,
        bundle: Some(bundle),
    })
}

/// Binary-searches simulated time in `(lo, hi]` for the earliest cycle at
/// which resuming `snapshot` manifests an abnormal outcome. Each probe is a
/// full restore + deterministic re-run to the midpoint, so the result is
/// exact: `run_until(first_fail - 1ps)` pauses healthy,
/// `run_until(first_fail)` aborts.
fn bisect(
    cfg: &SystemConfig,
    prog: &Program,
    snapshot: &[u8],
    lo: Time,
    hi: Time,
) -> Result<Time, TriageError> {
    let manifests_by = |t: Time| -> Result<bool, TriageError> {
        let mut m = Machine::restore_bytes(cfg.clone(), prog.clone(), snapshot)?;
        Ok(matches!(m.run_until(t), Some(r) if r.outcome != Outcome::Completed))
    };
    let (mut lo, mut hi) = (lo.as_ps(), hi.as_ps());
    debug_assert!(
        manifests_by(Time::from_ps(hi))?,
        "failure not reproducible from checkpoint"
    );
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if manifests_by(Time::from_ps(mid))? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Time::from_ps(hi))
}

/// Re-runs a captured failure with the sanitizer forced on. Returns the
/// replay's report and whether the original failure reproduced: abnormal
/// outcome, at the bundled first-fail cycle, with a matching invariant ID
/// when the bundle recorded one.
///
/// # Errors
///
/// [`TriageError`] when the preset is unknown, the source no longer
/// compiles, or the embedded snapshot fails to restore (e.g. a config hash
/// mismatch — the preset drifted from the captured run).
pub fn replay_bundle(b: &ReplayBundle) -> Result<(RunReport, bool), TriageError> {
    let mut cfg = SystemConfig::by_preset(&b.preset)
        .ok_or_else(|| TriageError::UnknownPreset(b.preset.clone()))?;
    cfg.protocol = b.protocol;
    cfg.fault = b.fault;
    cfg.sanitizer = b.sanitizer;
    cfg.sanitizer.enabled = true; // full check verbosity, whatever was captured
    let prog =
        ccsvm_xthreads::build(&b.source).map_err(|e| TriageError::Compile(format!("{e}")))?;
    let mut m = Machine::restore_bytes(cfg, prog, &b.snapshot)?;
    let report = m.run();
    let abnormal = report.outcome != Outcome::Completed;
    let same_cycle = report.time == b.first_fail;
    let invariant_matches = match &b.violation {
        None => true,
        Some(v) => report
            .diagnostic
            .as_ref()
            .and_then(|d| d.violation.as_ref())
            .is_some_and(|rv| rv.invariant == v.invariant),
    };
    Ok((report, abnormal && same_cycle && invariant_matches))
}
