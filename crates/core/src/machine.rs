//! The full-system machine: event loop, OS services, MIFD, shootdowns.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use ccsvm_cpu::{CpuAction, CpuCore};
use ccsvm_engine::{
    sanitizer::check_conservation, stat_id, EvRecord, EvRing, EventQueue, FaultDomain, FaultPlan,
    MutationKind, ScanControl, SpecStats, SplitMix64, Stats, Time, Violation, Watchdog,
};
use ccsvm_isa::{sys, Program};
use ccsvm_mem::{
    Access, AccessResult, BankConfig, Completion, CorePort, L1Config, MemConfig, MemEvent,
    MemorySystem, PortId, PortLog,
};
use ccsvm_mttop::{BatchOutcome, Mifd, MttopAction, MttopCore, PageFaultReq, SpecUndo, TaskChunk};
use ccsvm_noc::{Network, NodeId, Topology};
use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use ccsvm_vm::{GuestHeap, OsLite, PteWrite, VirtAddr, PAGE_BYTES};

use crate::config::SpeculationConfig;
use crate::SystemConfig;

const KIND_SHIFT: u32 = 60;
const IDX_SHIFT: u32 = 48;
const KIND_CPU: u64 = 1;
const KIND_MTTOP: u64 = 2;
const KIND_HANDLER: u64 = 3;

fn prefix(kind: u64, idx: usize) -> u64 {
    (kind << KIND_SHIFT) | ((idx as u64) << IDX_SHIFT)
}

fn times(t: Time, k: u64) -> Time {
    let ps = t.as_ps().checked_mul(k);
    debug_assert!(
        ps.is_some(),
        "time multiply overflowed: {} ps x {k} — bad config would silently warp simulated time",
        t.as_ps()
    );
    Time::from_ps(ps.unwrap_or(u64::MAX))
}

/// One claimed member of a speculative epoch (DESIGN §12).
#[derive(Debug)]
struct EpochMember {
    core: usize,
    /// Queue key of the member's batch event: the member commits only after
    /// every event ordered strictly before `(time, qseq)` has drained.
    time: Time,
    qseq: u64,
    /// The batch schedule sequence claimed at formation; a mismatch with the
    /// core's live sequence at commit time means the schedule was superseded
    /// mid-epoch (stale — discarded exactly as the serial loop would).
    bseq: u64,
    state: MemberState,
    outcome: Option<BatchOutcome>,
}

#[derive(Debug)]
enum MemberState {
    /// The epoch head: popped from the queue front, so nothing can drain
    /// before its slot and it commits unconditionally (no undo journal).
    Head,
    /// Speculated with an open L1 undo journal + saved core snapshot.
    Spec,
    /// Conflicted and rolled back; re-executes serially at its commit slot.
    RolledBack,
}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of host worker threads for core-batch rounds.
///
/// The zoned and epoch executors run *thousands* of small fork-join rounds
/// per simulated run; spawning OS threads per round (`std::thread::scope`)
/// costs tens of microseconds each and dominated the parallel phase
/// wall-clock, so the pool spawns its workers once per machine and a round
/// becomes a channel send plus a completion barrier. The worker count is
/// `exec_threads - 1` — `sim_threads` clamped to the host's available
/// parallelism — because on a host with fewer CPUs than `sim_threads` the
/// extra workers would only time-slice; with zero workers a round runs
/// entirely inline on the calling thread and the pool is pure bookkeeping.
///
/// [`WorkerPool::round`] provides scoped-execution semantics over
/// `'static` channels by erasing job lifetimes; it is sound because it
/// never returns (or unwinds) before every dispatched job has signalled
/// completion, so no job outlives the borrows it captures.
struct WorkerPool {
    txs: Vec<std::sync::mpsc::Sender<PoolJob>>,
    done_rx: std::sync::mpsc::Receiver<std::thread::Result<()>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<PoolJob>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                for job in rx {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    if done.send(r).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        WorkerPool {
            txs,
            done_rx,
            handles,
        }
    }

    /// Runs each of `jobs` on a distinct worker and `own` on the calling
    /// thread, returning only after all of them finish. A panic from any
    /// job (or from `own`) is re-raised here — after the barrier, so
    /// borrowed data is never freed under a still-running job.
    fn round<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>, own: impl FnOnce()) {
        assert!(jobs.len() <= self.txs.len(), "more jobs than pool workers");
        let mut sent = 0;
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: lifetime erasure only — layout is identical. The
            // completion barrier below keeps every borrow captured by `job`
            // alive until the job has finished running; a job whose send
            // fails (dead worker) is dropped immediately, never run.
            let job: PoolJob = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, PoolJob>(job)
            };
            if self.txs[i].send(job).is_ok() {
                sent += 1;
            }
        }
        let own_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(own));
        let mut worker_panic = None;
        for _ in 0..sent {
            match self.done_rx.recv().expect("pool worker died without reporting") {
                Ok(()) => {}
                Err(p) => worker_panic = Some(p),
            }
        }
        // Barrier reached: all borrows are dead; now surface any panic.
        if let Err(p) = own_result {
            std::panic::resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.clear(); // closes the job channels; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Host wall-clock phase indices for the `prof_phase` accumulator.
const PH_CORE: usize = 0;
const PH_UNCORE: usize = 1;
const PH_MERGE: usize = 2;
const PH_OTHER: usize = 3;

/// Host wall-clock breakdown of a run (populated when
/// [`SystemConfig::host_profile`] is set), exposing where host time goes —
/// the parallel executor's Amdahl ceiling — in the perf artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HostPhases {
    /// Core batch execution (CPU + MTTOP quantum stepping). The only phase
    /// the fork-join executor can spread over workers.
    pub core_exec_ms: f64,
    /// Uncore event handling (coherence hops, banks, DRAM) — inherently
    /// serial: it mutates the shared `MemorySystem`.
    pub uncore_ms: f64,
    /// Ordered merge of buffered core actions into the uncore (serial).
    pub merge_ms: f64,
    /// Everything else (OS services, MIFD, shootdowns, watchdog).
    pub other_ms: f64,
    /// Host time spent decoding superblocks (DESIGN §11). Decoding happens
    /// inline during core batch execution, so this is a *subset* of
    /// `core_exec_ms`, not an additional phase. Unlike the other fields it
    /// is counted unconditionally (no `host_profile` gate — the cache keeps
    /// its own counters).
    pub decode_ms: f64,
    /// Fork-join groups executed: same-timestamp zones under the zoned
    /// executor, cross-timestamp epochs under the speculative executor
    /// (DESIGN §7/§12).
    pub zones: u64,
    /// Core batches executed inside those groups.
    pub zone_batches: u64,
}

/// Machine events.
#[derive(Debug)]
enum Ev {
    Mem(MemEvent),
    CpuBatch {
        core: usize,
        seq: u64,
    },
    MttopBatch {
        core: usize,
        seq: u64,
    },
    /// A launch write-syscall arrived at the MIFD.
    MifdLaunch {
        cpu: usize,
        desc: [u64; 4],
    },
    /// The MIFD's task chunk arrived at an MTTOP core.
    ChunkArrive {
        core: usize,
        chunk: TaskChunk,
    },
    /// A device/OS response releases a blocked syscall.
    ResumeSyscall {
        cpu: usize,
        ret: u64,
    },
    /// An MTTOP page-fault interrupt arrived (via the MIFD) at a CPU.
    FaultToCpu {
        req: PageFaultReq,
        mcore: usize,
    },
    /// The fault-resolution ack arrived back at the MTTOP core.
    FaultAckAtMttop {
        mcore: usize,
        warp: usize,
    },
    /// Shootdown IPI arrived at a CPU.
    IpiArrive {
        target: usize,
        va: VirtAddr,
        initiator: usize,
    },
    /// Shootdown flush request arrived at an MTTOP core.
    FlushArrive {
        target: usize,
        va: VirtAddr,
        initiator: usize,
    },
    /// Shootdown ack arrived back at the initiator.
    ShootAck {
        initiator: usize,
    },
    /// The OS handler's PTE store hit MSHR exhaustion; retry the issue.
    HandlerRetry {
        cpu: usize,
    },
    /// Periodic forward-progress check (self-rescheduling while armed).
    WatchdogTick,
}

/// OS handler work performed on a CPU core (page-fault service, unmap).
#[derive(Clone, Copy, Debug)]
enum Job {
    /// This CPU's own thread faulted.
    Local { va: VirtAddr },
    /// A forwarded MTTOP fault (§3.2.1).
    Remote {
        mcore: usize,
        warp: usize,
        va: VirtAddr,
    },
    /// munmap: PTE clear, then TLB shootdown.
    Unmap { va: VirtAddr },
}

#[derive(Debug)]
struct Active {
    job: Job,
    writes: Vec<PteWrite>,
    next: usize,
}

#[derive(Debug, Default)]
struct Handler {
    queue: VecDeque<Job>,
    active: Option<Active>,
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// `main` returned; the report's results are valid.
    Completed,
    /// The watchdog saw no forward progress (or the event queue drained /
    /// `max_sim_time` was exceeded) before `main` exited.
    Deadlock,
    /// An access consumed a block poisoned by an uncorrectable (double-bit)
    /// DRAM ECC error.
    Poisoned,
    /// A directory transaction exhausted its NACK retry budget — responses
    /// were lost beyond what the protocol's recovery could absorb.
    RetryBudgetExhausted,
    /// The coherence sanitizer caught a protocol-invariant violation
    /// (DESIGN §9); the diagnostic's `violation` names the invariant and the
    /// cycle it first manifested.
    InvariantViolation,
}

/// Structured diagnostics captured when a run aborts, so a hang is
/// debuggable instead of silent.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosticDump {
    /// Human-readable abort reason.
    pub reason: String,
    /// Simulated time of the abort.
    pub at: Time,
    /// Outstanding miss blocks per L1 port (ports with none omitted).
    pub outstanding: Vec<(usize, Vec<u64>)>,
    /// Active directory transactions per bank: `(block, phase)`.
    pub dir_active: Vec<(usize, Vec<(u64, String)>)>,
    /// Blocks poisoned by uncorrectable ECC errors.
    pub poisoned_blocks: Vec<u64>,
    /// NoC links still draining queued flits at abort time.
    pub noc_busy_links: usize,
    /// Largest remaining per-link backlog on the NoC.
    pub noc_max_backlog: Time,
    /// The sanitizer violation behind an [`Outcome::InvariantViolation`]
    /// abort (also filled in when the sanitizer's end-of-run sweep finds a
    /// violation after another abort, e.g. a watchdog-caught wedge whose
    /// root cause was a lost message).
    pub violation: Option<Violation>,
}

impl std::fmt::Display for DiagnosticDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "abort at {}: {}", self.at, self.reason)?;
        for (port, blocks) in &self.outstanding {
            writeln!(f, "  port {port}: outstanding misses on blocks {blocks:?}")?;
        }
        for (bank, txs) in &self.dir_active {
            for (block, phase) in txs {
                writeln!(f, "  bank {bank}: block {block} stuck in {phase}")?;
            }
        }
        if !self.poisoned_blocks.is_empty() {
            writeln!(f, "  poisoned blocks: {:?}", self.poisoned_blocks)?;
        }
        if let Some(v) = &self.violation {
            writeln!(f, "  {v}")?;
        }
        write!(
            f,
            "  noc: {} busy links, max backlog {}",
            self.noc_busy_links, self.noc_max_backlog
        )
    }
}

/// Results of a completed run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Simulated time from boot to process exit — the paper's "runtime".
    pub time: Time,
    /// Everything the guest printed.
    pub printed: Vec<String>,
    /// Simulated time of each print (parallel to `printed`) — workloads use
    /// marker prints to delimit measured regions.
    pub printed_at: Vec<Time>,
    /// Cumulative DRAM accesses at each print (parallel to `printed`) — lets
    /// harnesses report region-only off-chip traffic (Figure 9).
    pub dram_at_print: Vec<u64>,
    /// `main`'s return value.
    pub exit_code: u64,
    /// Total off-chip DRAM accesses (Figure 9's metric).
    pub dram_accesses: u64,
    /// Total instructions executed (CPU instructions + MTTOP thread-instructions).
    pub instructions: u64,
    /// Events dispatched by the machine's event loop (hot-path perf
    /// telemetry: host throughput is `events / wall_clock`).
    pub events: u64,
    /// How the run ended. Anything but [`Outcome::Completed`] means the
    /// other fields describe a partial run.
    pub outcome: Outcome,
    /// Populated when `outcome` is not [`Outcome::Completed`].
    pub diagnostic: Option<DiagnosticDump>,
    /// Every component's counters.
    pub stats: Stats,
}

impl RunReport {
    /// Serializes the report with the snapshot codec (no header — callers
    /// that persist reports, like the sweep orchestrator's result cache,
    /// add their own magic/version/config-hash envelope). The encoding is
    /// canonical: two bit-identical reports always serialize to identical
    /// bytes, even across processes (stats are written as their sorted
    /// logical view, not by process-local interning order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.time.as_ps());
        w.put_usize(self.printed.len());
        for s in &self.printed {
            w.put_str(s);
        }
        for t in &self.printed_at {
            w.put_u64(t.as_ps());
        }
        for d in &self.dram_at_print {
            w.put_u64(*d);
        }
        w.put_u64(self.exit_code);
        w.put_u64(self.dram_accesses);
        w.put_u64(self.instructions);
        w.put_u64(self.events);
        w.put_u8(self.outcome.snap_tag());
        match &self.diagnostic {
            None => w.put_bool(false),
            Some(d) => {
                w.put_bool(true);
                d.save(&mut w);
            }
        }
        self.stats.save(&mut w);
        w.into_vec()
    }

    /// Decodes a report written by [`RunReport::to_bytes`].
    ///
    /// # Errors
    ///
    /// A typed [`SnapError`] on truncation, trailing bytes, or any
    /// malformed field — never a panic and never a silently wrong report.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunReport, SnapError> {
        let mut r = SnapReader::new(bytes);
        let time = Time::from_ps(r.get_u64()?);
        let n = r.get_count(8)?;
        let mut printed = Vec::with_capacity(n);
        for _ in 0..n {
            printed.push(r.get_str()?.to_string());
        }
        let mut printed_at = Vec::with_capacity(n);
        for _ in 0..n {
            printed_at.push(Time::from_ps(r.get_u64()?));
        }
        let mut dram_at_print = Vec::with_capacity(n);
        for _ in 0..n {
            dram_at_print.push(r.get_u64()?);
        }
        let exit_code = r.get_u64()?;
        let dram_accesses = r.get_u64()?;
        let instructions = r.get_u64()?;
        let events = r.get_u64()?;
        let outcome = Outcome::from_snap_tag(r.get_u8()?)?;
        let diagnostic = if r.get_bool()? {
            Some(DiagnosticDump::load_snap(&mut r)?)
        } else {
            None
        };
        let mut stats = Stats::new();
        stats.load(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after run report", r.remaining()),
            });
        }
        Ok(RunReport {
            time,
            printed,
            printed_at,
            dram_at_print,
            exit_code,
            dram_accesses,
            instructions,
            events,
            outcome,
            diagnostic,
            stats,
        })
    }
}

/// The CCSVM chip plus OsLite. See the [crate docs](crate).
pub struct Machine {
    cfg: SystemConfig,
    prog: Program,
    mem: MemorySystem,
    net: Network,
    queue: EventQueue<Ev>,
    cpus: Vec<CpuCore>,
    mttops: Vec<MttopCore>,
    mifd: Mifd,
    os: OsLite,
    heap: GuestHeap,
    cpu_seq: Vec<u64>,
    mttop_seq: Vec<u64>,
    handlers: Vec<Handler>,
    shoot_pending: Vec<usize>,
    /// Chunks planned but not yet arrived, per MTTOP core.
    reserved: Vec<usize>,
    cpu_nodes: Vec<NodeId>,
    mttop_nodes: Vec<NodeId>,
    mifd_node: NodeId,
    kexit: usize,
    printed: Vec<String>,
    printed_at: Vec<Time>,
    dram_at_print: Vec<u64>,
    now: Time,
    main_exited: bool,
    exit_code: u64,
    started: bool,
    /// Monotone forward-progress counter the watchdog observes (batches that
    /// advanced, completions delivered, handler steps).
    progress: u64,
    /// Events dispatched by the run loop (perf telemetry).
    events: u64,
    /// Reused completion buffer for `Ev::Mem` dispatch (one `Ev::Mem` fires
    /// per coherence hop, so a fresh `Vec` per event is measurable).
    completions_buf: Vec<ccsvm_mem::Completion>,
    /// One uncore-effect buffer per L1 port (CPU ports first, then MTTOP),
    /// reused across batches by both the serial and fork-join paths.
    port_logs: Vec<PortLog>,
    /// Host wall-clock per phase (`PH_*`); only written when
    /// `cfg.host_profile` is set.
    prof_phase: [Duration; 4],
    /// Fork-join zones/epochs executed and batches stepped inside them
    /// (telemetry; deliberately kept out of `Stats` so reports stay
    /// identical across `sim_threads` values).
    zones: u64,
    zone_batches: u64,
    /// Speculative epoch executor telemetry (DESIGN §12). Host-side only —
    /// never serialized, never part of a `RunReport`.
    spec_stats: SpecStats,
    /// Reusable per-MTTOP-core undo records for epoch members' architectural
    /// state, captured at `spec_begin` time ([`ccsvm_mttop::SpecUndo`]:
    /// touched warps + scalar scheduler state, not a full-core snapshot).
    spec_undo: Vec<SpecUndo>,
    /// [`MttopConfig::wake_grid_cycles`] converted to picoseconds once
    /// (`sched_mttop_batch` is hot); `0` disables grid alignment.
    wake_grid_ps: u64,
    /// Lazily spawned persistent worker pool shared by the zoned and epoch
    /// executors (host-side only; never serialized).
    pool: Option<WorkerPool>,
    /// `sim_threads` clamped to the host's available parallelism. Execution
    /// chunking and pool sizing use this; *semantics* (which executor runs,
    /// epoch formation, commit order) follow `sim_threads` alone, so
    /// results and speculation coverage are identical on any host.
    exec_threads: usize,
    /// Forward-progress watchdog, observed on every `Ev::WatchdogTick`. A
    /// `Machine` field (not a run-loop local) so its memory of the last
    /// progress survives a checkpoint/restore of a wedged run.
    watchdog: Watchdog,
    /// Set when the run must abort; checked after every dispatched event.
    failure: Option<(Outcome, DiagnosticDump)>,
    // Test-knob counters for the deterministic event-drop fault hooks.
    data_deliveries: u64,
    resps_seen: u64,
    blackholed_block: Option<u64>,
    /// Recent-uncore-event ring for replay bundles. Recorded only while the
    /// sanitizer is enabled and never serialized: it is triage telemetry,
    /// not simulated state, so snapshot images stay identical across
    /// sanitizer settings.
    san_ring: EvRing,
    /// Occurrences of the configured mutation's target class seen so far
    /// (serialized: a restored machine must find the same nth target).
    mut_count: u64,
    /// Whether the configured mutation has been applied (latched: a
    /// mutation fires once, at the first applicable target at or after its
    /// nth class occurrence).
    mut_done: bool,
    /// Seeded per-delivery drop stream for bank→L1 snoop probes
    /// (`FaultDomain::SnoopProbe`); `None` when the domain is off. Serialized
    /// (stream position + drop tally) so a restored run draws identically.
    snoop_probe_rng: Option<SplitMix64>,
    /// Probes dropped so far (checked against the configured cap).
    snoop_probe_drops: u64,
    /// Seeded drop stream for L1→bank `SnoopResp`s answering a write-update
    /// round (`FaultDomain::UpdAck`); `None` when the domain is off.
    upd_ack_rng: Option<SplitMix64>,
    /// Update-round acks dropped so far (checked against the cap).
    upd_ack_drops: u64,
}

impl Machine {
    /// Builds the chip for `prog` (compile with [`ccsvm_xthreads::build`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration doesn't fit its torus or the program
    /// lacks the `__start`/`__kexit` stubs.
    pub fn new(cfg: SystemConfig, prog: Program) -> Machine {
        let topo = Topology::torus(cfg.torus.0, cfg.torus.1);
        assert!(
            cfg.nodes_needed() <= topo.len(),
            "torus too small for {} units",
            cfg.nodes_needed()
        );
        let kexit = prog.entry("__kexit");
        let _ = prog.entry("__start");

        // Node placement: CPUs, then L2 banks, then the MIFD, then MTTOPs.
        let mut next = 0usize;
        let mut take = |n: usize| {
            let v: Vec<NodeId> = (next..next + n).map(NodeId).collect();
            next += n;
            v
        };
        let cpu_nodes = take(cfg.n_cpus);
        let bank_nodes = take(cfg.l2_banks);
        let mifd_node = take(1)[0];
        let mttop_nodes = take(cfg.n_mttops);

        let mut l1s = Vec::new();
        for &node in &cpu_nodes {
            l1s.push(L1Config {
                node,
                cache: cfg.cpu_l1,
                hit_time: cfg.cpu_l1_hit,
                max_mshrs: cfg.cpu_mshrs,
                write_policy: cfg.l1_write_policy,
            });
        }
        for &node in &mttop_nodes {
            l1s.push(L1Config {
                node,
                cache: cfg.mttop_l1,
                hit_time: cfg.mttop_l1_hit,
                max_mshrs: cfg.mttop_mshrs,
                write_policy: cfg.l1_write_policy,
            });
        }
        let banks = bank_nodes
            .iter()
            .map(|&node| BankConfig {
                node,
                cache: cfg.l2_bank,
                latency: cfg.l2_latency,
            })
            .collect();
        let plan = FaultPlan::new(cfg.fault);
        let mut mem = MemorySystem::new(MemConfig {
            l1s,
            banks,
            dram: cfg.dram,
            ctrl_bytes: 8,
            data_bytes: 72,
            protocol: cfg.protocol,
        });
        mem.install_faults(&plan);
        let mut net = Network::new(topo, cfg.noc);
        if cfg.fault.noc.drop_rate > 0.0 {
            net.install_faults(cfg.fault.noc, plan.stream(FaultDomain::Noc));
        }

        let mut cpus: Vec<CpuCore> = (0..cfg.n_cpus)
            .map(|i| CpuCore::new(PortId(i), cfg.cpu, prefix(KIND_CPU, i)))
            .collect();
        if cfg.fault.tlb.transient_rate > 0.0 {
            for (i, c) in cpus.iter_mut().enumerate() {
                c.install_tlb_faults(cfg.fault.tlb, plan.stream(FaultDomain::Tlb(i as u32)));
            }
        }
        let snoop_probe_rng =
            (cfg.fault.snoop_probe.drop_rate > 0.0).then(|| plan.stream(FaultDomain::SnoopProbe));
        let upd_ack_rng =
            (cfg.fault.upd_ack.drop_rate > 0.0).then(|| plan.stream(FaultDomain::UpdAck));
        let mut mttops: Vec<MttopCore> = (0..cfg.n_mttops)
            .map(|i| {
                let mut mc = cfg.mttop;
                mc.ctx_base = (cfg.n_cpus + i * mc.warps * mc.lanes) as u64;
                MttopCore::new(PortId(cfg.n_cpus + i), mc, prefix(KIND_MTTOP, i))
            })
            .collect();
        for c in &mut cpus {
            c.set_sb_cache(cfg.sb_cache);
        }
        for m in &mut mttops {
            m.set_sb_cache(cfg.sb_cache);
        }

        let os = OsLite::new(cfg.phys_pool.0, cfg.phys_pool.1);
        let heap = GuestHeap::new(
            VirtAddr(ccsvm_isa::abi::HEAP_BASE),
            ccsvm_isa::abi::HEAP_LEN,
        );

        Machine {
            handlers: (0..cfg.n_cpus).map(|_| Handler::default()).collect(),
            shoot_pending: vec![0; cfg.n_cpus],
            reserved: vec![0; cfg.n_mttops],
            cpu_seq: vec![0; cfg.n_cpus],
            mttop_seq: vec![0; cfg.n_mttops],
            port_logs: (0..cfg.n_cpus + cfg.n_mttops)
                .map(|_| PortLog::new())
                .collect(),
            spec_undo: (0..cfg.n_mttops).map(|_| SpecUndo::default()).collect(),
            wake_grid_ps: cfg.mttop.clock.cycles(cfg.mttop.wake_grid_cycles).as_ps(),
            pool: None,
            exec_threads: cfg.sim_threads.max(1).min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
            san_ring: EvRing::new(if cfg.sanitizer.enabled {
                cfg.sanitizer.ring_capacity
            } else {
                0
            }),
            cfg,
            prog,
            mem,
            net,
            queue: EventQueue::new(),
            cpus,
            mttops,
            mifd: Mifd::new(),
            os,
            heap,
            cpu_nodes,
            mttop_nodes,
            mifd_node,
            kexit,
            printed: Vec::new(),
            printed_at: Vec::new(),
            dram_at_print: Vec::new(),
            now: Time::ZERO,
            main_exited: false,
            exit_code: 0,
            started: false,
            progress: 0,
            events: 0,
            completions_buf: Vec::new(),
            prof_phase: [Duration::ZERO; 4],
            zones: 0,
            zone_batches: 0,
            spec_stats: SpecStats::default(),
            watchdog: Watchdog::new(),
            failure: None,
            data_deliveries: 0,
            resps_seen: 0,
            blackholed_block: None,
            mut_count: 0,
            mut_done: false,
            snoop_probe_rng,
            snoop_probe_drops: 0,
            upd_ack_rng,
            upd_ack_drops: 0,
        }
    }

    /// Host wall-clock phase breakdown and fork-join zone telemetry. Phase
    /// times are all zero unless [`SystemConfig::host_profile`] was set.
    pub fn host_phases(&self) -> HostPhases {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        HostPhases {
            core_exec_ms: ms(self.prof_phase[PH_CORE]),
            uncore_ms: ms(self.prof_phase[PH_UNCORE]),
            merge_ms: ms(self.prof_phase[PH_MERGE]),
            other_ms: ms(self.prof_phase[PH_OTHER]),
            decode_ms: self.sb_stats().decode_ns as f64 / 1e6,
            zones: self.zones,
            zone_batches: self.zone_batches,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Speculative epoch executor telemetry (DESIGN §12): epochs formed,
    /// members committed/rolled back/stale, undo-journal overflows, and the
    /// live-batch denominator for epoch coverage. Host-side only — never part
    /// of [`ccsvm_engine::Stats`] or the `RunReport`, so speculation settings
    /// cannot perturb simulated results.
    pub fn spec_stats(&self) -> SpecStats {
        self.spec_stats
    }

    /// Aggregated decoded-superblock cache counters over every CPU and MTTOP
    /// core (DESIGN §11). Host-side telemetry only — never part of
    /// [`ccsvm_engine::Stats`] or the `RunReport`, so enabling/disabling the
    /// cache cannot perturb simulated results.
    pub fn sb_stats(&self) -> ccsvm_isa::SbStats {
        let mut total = ccsvm_isa::SbStats::default();
        for c in &self.cpus {
            total.merge(&c.sb_stats());
        }
        for m in &self.mttops {
            total.merge(&m.sb_stats());
        }
        total
    }

    /// Current simulated time (the timestamp of the last dispatched event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Everything the guest has printed so far. On a machine paused by
    /// [`Machine::run_until`] this lets a harness locate region markers when
    /// choosing a checkpoint cycle (e.g. warm-start sweeps snapshotting at
    /// offload-region start).
    pub fn printed(&self) -> &[String] {
        &self.printed
    }

    /// The recorded failure, if the run has aborted: outcome + diagnostics.
    pub fn failure(&self) -> Option<(Outcome, &DiagnosticDump)> {
        self.failure.as_ref().map(|(o, d)| (*o, d))
    }

    /// The sanitizer's ring of recent uncore events (most recent last) and
    /// the total recorded count. Empty unless the sanitizer was enabled.
    pub fn ring_events(&self) -> (Vec<EvRecord>, u64) {
        (self.san_ring.records(), self.san_ring.total())
    }

    /// Debug: each MTTOP core's local clock (≈ when it last executed).
    pub fn mttop_times(&self) -> Vec<ccsvm_engine::Time> {
        self.mttops.iter().map(|m| m.local_time()).collect()
    }

    /// Debug: per-bank L2 occupancy and resident block lists.
    pub fn l2_occupancy(&self) -> Vec<(usize, Vec<u64>)> {
        self.mem.l2_occupancy()
    }

    /// Allocates guest heap memory **before** the run and writes `data` into
    /// it (mapping pages through the backdoor). Returns the guest VA.
    ///
    /// # Panics
    ///
    /// Panics once the simulation has started, or on heap exhaustion.
    pub fn guest_alloc_init(&mut self, data: &[u8]) -> u64 {
        assert!(!self.started, "pre-run input loading only");
        let va = self
            .heap
            .malloc(data.len() as u64)
            .expect("guest heap exhausted")
            .0;
        let first = va / PAGE_BYTES;
        let last = (va + data.len() as u64 - 1) / PAGE_BYTES;
        for page in first..=last {
            for w in self.os.map_page(VirtAddr(page * PAGE_BYTES)) {
                self.mem.backdoor_write(w.addr, &w.value.to_le_bytes());
            }
        }
        // Write data page by page.
        let mut off = 0usize;
        while off < data.len() {
            let a = VirtAddr(va + off as u64);
            let in_page = (PAGE_BYTES - a.page_offset()) as usize;
            let n = in_page.min(data.len() - off);
            let pa = self.os.translate(a).expect("just mapped");
            self.mem.backdoor_write(pa, &data[off..off + n]);
            off += n;
        }
        va
    }

    /// Coherently reads guest memory (any time; used for results).
    ///
    /// # Panics
    ///
    /// Panics if any touched page is unmapped.
    pub fn guest_read(&self, va: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = VirtAddr(va + off as u64);
            let in_page = (PAGE_BYTES - a.page_offset()) as usize;
            let n = in_page.min(buf.len() - off);
            let pa = self
                .os
                .translate(a)
                .unwrap_or_else(|| panic!("guest_read of unmapped {a}"));
            self.mem.backdoor_read(pa, &mut buf[off..off + n]);
            off += n;
        }
    }

    /// Reads `n` little-endian 64-bit words of guest memory.
    pub fn guest_read_words(&self, va: u64, n: usize) -> Vec<u64> {
        let mut bytes = vec![0u8; n * 8];
        self.guest_read(va, &mut bytes);
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// Boots `main` on CPU 0 and simulates to process exit.
    ///
    /// Never hangs or panics on a stuck machine: when forward progress stops
    /// (watchdog), `max_sim_time` is exceeded, the event queue drains early,
    /// a block is ECC-poisoned, or a directory transaction exhausts its
    /// retry budget, the run aborts gracefully and the report carries the
    /// non-`Completed` [`Outcome`] plus a [`DiagnosticDump`].
    pub fn run(&mut self) -> RunReport {
        self.run_until(Time::MAX)
            .expect("an unbounded run cannot pause")
    }

    /// Simulates until process exit **or** until the next event would lie
    /// beyond `limit` (simulated time), whichever comes first. Returns
    /// `None` when the run paused at `limit` — the machine sits at an
    /// inter-event boundary and can be [`Machine::checkpoint`]ed or resumed
    /// with another `run_until`/[`Machine::run`] call — and `Some(report)`
    /// when the run finished (or aborted). Pausing never perturbs the
    /// simulation: a paused-and-resumed run produces a [`RunReport`]
    /// bit-identical to an uninterrupted one.
    pub fn run_until(&mut self, limit: Time) -> Option<RunReport> {
        if !self.started {
            self.boot();
        }
        let paused = if self.cfg.sim_threads > 1 {
            // Mutation campaigns deliberately break coherence invariants, so
            // the epoch executor's conflict rules no longer imply serial
            // equivalence there — fall back to same-timestamp zoning.
            if self.cfg.speculation.enabled && self.cfg.sanitizer.mutate.is_none() {
                self.run_epochs(limit)
            } else {
                self.run_zoned(limit)
            }
        } else {
            self.run_serial(limit)
        };
        if paused {
            return None;
        }
        if !self.main_exited && self.failure.is_none() {
            let reason = "event queue drained before main exited".to_string();
            self.failure = Some((Outcome::Deadlock, self.dump(reason)));
        }
        self.final_check();
        Some(self.report())
    }

    /// Runs to completion, pausing every `every` of simulated time and
    /// invoking `at_pause` at each inter-event boundary — the checkpoint
    /// cadence hook: the closure typically flushes
    /// [`Machine::checkpoint_bytes`] somewhere durable. Returning `false`
    /// from the closure stops the run at that boundary and yields `None`
    /// (used for cooperative shutdown on SIGTERM); otherwise the final
    /// report is returned, bit-identical to an uninterrupted
    /// [`Machine::run`] — pausing never perturbs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero (the cadence would never advance).
    pub fn run_with_cadence(
        &mut self,
        every: Time,
        mut at_pause: impl FnMut(&mut Machine) -> bool,
    ) -> Option<RunReport> {
        assert!(every > Time::ZERO, "checkpoint cadence must be positive");
        let mut limit = self.now.plus(every);
        loop {
            match self.run_until(limit) {
                Some(report) => return Some(report),
                None => {
                    if !at_pause(self) {
                        return None;
                    }
                    limit = limit.plus(every);
                }
            }
        }
    }

    /// One-time boot: address-space setup, `main` on CPU 0, watchdog arm.
    fn boot(&mut self) {
        assert!(!self.started, "a Machine runs once");
        self.started = true;
        // The MIFD driver sets up the process's virtual address space when it
        // registers the MTTOP thread contexts (§3.1/§4.3): pre-map the top
        // stack page of every hardware context. Deeper stack pages (e.g.
        // recursion) still demand-fault.
        let contexts = self.cfg.n_cpus as u64
            + (self.cfg.n_mttops * self.cfg.mttop.warps * self.cfg.mttop.lanes) as u64;
        for ctx in 0..contexts {
            let top = VirtAddr(ccsvm_isa::abi::stack_top(ctx)).page_base();
            for w in self.os.map_page(top) {
                self.mem.backdoor_write(w.addr, &w.value.to_le_bytes());
            }
        }
        let entry = self.prog.entry("__start");
        let cr3 = self.os.cr3();
        self.cpus[0].start_thread(Time::ZERO, entry, 0, 0, cr3, self.kexit);
        self.sched_cpu_batch(0, Time::ZERO);

        if self.cfg.fault.watchdog.enabled {
            self.queue
                .push(self.cfg.fault.watchdog.period, Ev::WatchdogTick);
        }
    }

    /// The serial reference event loop: pop, dispatch, repeat. Returns
    /// `true` when the loop paused because the next event lies past `limit`
    /// (the pause happens *before* popping, so resuming replays nothing).
    fn run_serial(&mut self, limit: Time) -> bool {
        let wd_cfg = self.cfg.fault.watchdog;
        let trace = std::env::var("CCSVM_TRACE").is_ok();
        let profile = self.cfg.host_profile;
        while let Some(next) = self.queue.peek_time() {
            if next > limit {
                return true;
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events += 1;
            if trace {
                let nev = self.events;
                if nev < 5000 {
                    eprintln!("[{nev}] t={t:?} {ev:?}");
                }
                if nev.is_multiple_of(1_000_000) {
                    eprintln!("[{nev}] t={t:?} qlen={}", self.queue.len());
                }
            }
            if t > self.cfg.max_sim_time {
                // Re-queue the event we popped but will never dispatch so the
                // NOC-CONSERVE audit counts it as in flight, not lost.
                self.queue.push(t, ev);
                let reason = format!("simulation exceeded max_sim_time {}", self.cfg.max_sim_time);
                self.failure = Some((Outcome::Deadlock, self.dump(reason)));
                break;
            }
            if let Ev::WatchdogTick = ev {
                let stale = self.watchdog.observe(self.now, self.progress);
                if stale >= wd_cfg.quanta {
                    self.watchdog_abort(stale, wd_cfg.period);
                    break;
                }
                self.queue.push(self.now + wd_cfg.period, Ev::WatchdogTick);
                continue;
            }
            // Batch events time themselves (core-exec vs merge) inside
            // `run_cpu_batch`/`run_mttop_batch`; everything else is timed
            // here as uncore or other.
            let cls = if profile && !matches!(ev, Ev::CpuBatch { .. } | Ev::MttopBatch { .. }) {
                Some((Instant::now(), matches!(ev, Ev::Mem(_))))
            } else {
                None
            };
            self.dispatch(ev);
            if let Some((t0, is_mem)) = cls {
                self.prof_phase[if is_mem { PH_UNCORE } else { PH_OTHER }] += t0.elapsed();
            }
            if self.main_exited || self.failure.is_some() {
                break;
            }
        }
        false
    }

    /// The deterministic fork-join loop (`sim_threads > 1`): identical to
    /// [`Machine::run_serial`] except that consecutive *live MTTOP* batch
    /// events sharing one timestamp are drained into a zone, stepped
    /// concurrently over disjoint `CorePort`s, and merged serially in pop
    /// order — reproducing the serial event stream bit-for-bit (DESIGN §7).
    ///
    /// CPU batches never join zones: their merge actions can read other
    /// cores' L1s synchronously (`MIFD_LAUNCH` descriptor reads) or end the
    /// run mid-zone (`Exited`), both of which would break the equivalence
    /// argument. Measured same-timestamp clustering is overwhelmingly MTTOP
    /// anyway (the SIMT cores share one clock).
    ///
    /// Returns `true` when paused at `limit`. The pause check only fires
    /// with no carried event in hand — a carried event always shares the
    /// current timestamp, so it can never lie past a future `limit`.
    fn run_zoned(&mut self, limit: Time) -> bool {
        let wd_cfg = self.cfg.fault.watchdog;
        let trace = std::env::var("CCSVM_TRACE").is_ok();
        let profile = self.cfg.host_profile;
        // A popped event that terminates zone collection can't be re-pushed
        // (a fresh push-seq would reorder it among equal-time events), so it
        // is carried into the next iteration instead.
        let mut carry: Option<(Time, Ev)> = None;
        let mut zone: Vec<usize> = Vec::new();
        loop {
            if carry.is_none() {
                match self.queue.peek_time() {
                    None => break,
                    Some(next) if next > limit => return true,
                    Some(_) => {}
                }
            }
            let Some((t, ev)) = carry.take().or_else(|| self.queue.pop()) else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events += 1;
            if trace {
                let nev = self.events;
                if nev < 5000 {
                    eprintln!("[{nev}] t={t:?} {ev:?}");
                }
                if nev.is_multiple_of(1_000_000) {
                    eprintln!("[{nev}] t={t:?} qlen={}", self.queue.len());
                }
            }
            if t > self.cfg.max_sim_time {
                // Re-queue the event we popped but will never dispatch so the
                // NOC-CONSERVE audit counts it as in flight, not lost.
                self.queue.push(t, ev);
                let reason = format!("simulation exceeded max_sim_time {}", self.cfg.max_sim_time);
                self.failure = Some((Outcome::Deadlock, self.dump(reason)));
                break;
            }
            match ev {
                Ev::WatchdogTick => {
                    let stale = self.watchdog.observe(self.now, self.progress);
                    if stale >= wd_cfg.quanta {
                        self.watchdog_abort(stale, wd_cfg.period);
                        break;
                    }
                    self.queue.push(self.now + wd_cfg.period, Ev::WatchdogTick);
                }
                Ev::MttopBatch { core, seq } => {
                    if seq != self.mttop_seq[core] {
                        continue; // stale: superseded by a later schedule
                    }
                    // Zones form only while nothing is ECC-poisoned: then no
                    // batch can abort the run, so every collected member is
                    // guaranteed to execute — exactly as in serial order.
                    if self.mem.has_poisoned() {
                        self.run_mttop_batch(core);
                    } else {
                        zone.clear();
                        zone.push(core);
                        let mut mask: u128 = 1 << core;
                        while self.queue.peek_time() == Some(t) {
                            let (t2, ev2) = self.queue.pop().expect("peeked event");
                            match ev2 {
                                Ev::MttopBatch { core: c, seq: s } if s != self.mttop_seq[c] => {
                                    // Stale: serial would pop + discard here.
                                    self.events += 1;
                                }
                                Ev::MttopBatch { core: c, seq: _ } if mask & (1 << c) == 0 => {
                                    self.events += 1;
                                    mask |= 1 << c;
                                    zone.push(c);
                                }
                                other => {
                                    carry = Some((t2, other));
                                    break;
                                }
                            }
                        }
                        if zone.len() == 1 {
                            self.run_mttop_batch(zone[0]);
                        } else {
                            self.zones += 1;
                            self.zone_batches += zone.len() as u64;
                            self.run_mttop_zone(&zone);
                        }
                    }
                    if self.main_exited || self.failure.is_some() {
                        break;
                    }
                }
                other => {
                    let cls = if profile && !matches!(other, Ev::CpuBatch { .. }) {
                        Some((Instant::now(), matches!(other, Ev::Mem(_))))
                    } else {
                        None
                    };
                    self.dispatch(other);
                    if let Some((t0, is_mem)) = cls {
                        self.prof_phase[if is_mem { PH_UNCORE } else { PH_OTHER }] += t0.elapsed();
                    }
                    if self.main_exited || self.failure.is_some() {
                        break;
                    }
                }
            }
        }
        false
    }

    /// Event-loop trace line, mirrored exactly by every executor so traces
    /// diff cleanly across `sim_threads`/speculation settings.
    fn trace_ev(&self, enabled: bool, t: Time, ev: &Ev) {
        if !enabled {
            return;
        }
        let nev = self.events;
        if nev < 5000 {
            eprintln!("[{nev}] t={t:?} {ev:?}");
        }
        if nev.is_multiple_of(1_000_000) {
            eprintln!("[{nev}] t={t:?} qlen={}", self.queue.len());
        }
    }

    /// The speculative epoch loop (`sim_threads > 1` with
    /// [`SpeculationConfig::enabled`], DESIGN §12): like
    /// [`Machine::run_zoned`], but a live MTTOP batch at the queue head may
    /// claim further live MTTOP batches from *later* timestamps as one
    /// epoch. Members execute concurrently over disjoint `CorePort`s with
    /// undo journals open, then commit strictly in queue-key order; events
    /// ordered between members drain through the normal serial dispatch
    /// path, rolling back any member they could affect. The result stream —
    /// and hence the `RunReport` — is bit-identical to serial.
    fn run_epochs(&mut self, limit: Time) -> bool {
        let wd_cfg = self.cfg.fault.watchdog;
        let trace = std::env::var("CCSVM_TRACE").is_ok();
        let profile = self.cfg.host_profile;
        loop {
            match self.queue.peek_time() {
                None => break,
                Some(next) if next > limit => return true,
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events += 1;
            self.trace_ev(trace, t, &ev);
            if t > self.cfg.max_sim_time {
                // Re-queue the event we popped but will never dispatch so the
                // NOC-CONSERVE audit counts it as in flight, not lost.
                self.queue.push(t, ev);
                let reason = format!("simulation exceeded max_sim_time {}", self.cfg.max_sim_time);
                self.failure = Some((Outcome::Deadlock, self.dump(reason)));
                break;
            }
            match ev {
                Ev::WatchdogTick => {
                    let stale = self.watchdog.observe(self.now, self.progress);
                    if stale >= wd_cfg.quanta {
                        self.watchdog_abort(stale, wd_cfg.period);
                        break;
                    }
                    self.queue.push(self.now + wd_cfg.period, Ev::WatchdogTick);
                }
                Ev::MttopBatch { core, seq } => {
                    if seq != self.mttop_seq[core] {
                        continue; // stale: superseded by a later schedule
                    }
                    // A poisoned block can abort any batch mid-epoch; run
                    // the head serially until the poison resolves the run.
                    if self.mem.has_poisoned() {
                        self.run_mttop_batch(core);
                    } else {
                        self.run_epoch(core, limit, trace, profile, &wd_cfg);
                    }
                    if self.main_exited || self.failure.is_some() {
                        break;
                    }
                }
                other => {
                    let cls = if profile && !matches!(other, Ev::CpuBatch { .. }) {
                        Some((Instant::now(), matches!(other, Ev::Mem(_))))
                    } else {
                        None
                    };
                    self.dispatch(other);
                    if let Some((t0, is_mem)) = cls {
                        self.prof_phase[if is_mem { PH_UNCORE } else { PH_OTHER }] += t0.elapsed();
                    }
                    if self.main_exited || self.failure.is_some() {
                        break;
                    }
                }
            }
        }
        false
    }

    /// Scans the queue in key order for up to
    /// [`SpeculationConfig::max_scan`] entries, extracting live MTTOP batch
    /// events for cores not already claimed in `mask`, and stopping at the
    /// first event that could invalidate speculation (any OS/MIFD/fault
    /// event), past the horizon, or once `left` claims are spent. Memory
    /// events, CPU batches, watchdog ticks, and stale/duplicate batch
    /// events are skipped — the commit-time drain handles each of those
    /// without ending the epoch.
    fn claim_members(
        &mut self,
        horizon: Time,
        mask: &mut u128,
        left: &mut usize,
    ) -> Vec<EpochMember> {
        let max_scan = self.cfg.speculation.max_scan;
        let taken = {
            let mttop_seq = &self.mttop_seq;
            let mask = &mut *mask;
            let left = &mut *left;
            self.queue.scan_extract(max_scan, |t, ev| {
                if t > horizon || *left == 0 {
                    return ScanControl::Stop;
                }
                match *ev {
                    // Memory events between members are handled by the
                    // commit-time drain (rolling back exactly the members
                    // they could touch); CPU batches execute against their
                    // own core + L1 and only conflict through OS-entering
                    // merge actions, which the drain detects after the fact;
                    // watchdog ticks are progress-neutral.
                    Ev::Mem(_) | Ev::CpuBatch { .. } | Ev::WatchdogTick => ScanControl::Skip,
                    Ev::MttopBatch { core, seq } => {
                        if seq != mttop_seq[core] || *mask & (1u128 << core) != 0 {
                            // Stale (drains as a no-op later) or a core with
                            // an uncommitted member: leave it in the queue.
                            ScanControl::Skip
                        } else {
                            *mask |= 1u128 << core;
                            *left -= 1;
                            ScanControl::Take
                        }
                    }
                    // Any OS/MIFD/fault event can reach arbitrary cores
                    // synchronously — don't speculate past it.
                    _ => ScanControl::Stop,
                }
            })
        };
        taken
            .into_iter()
            .map(|(t, qseq, ev)| {
                let Ev::MttopBatch { core, seq } = ev else {
                    unreachable!("formation takes only MTTOP batch events");
                };
                EpochMember {
                    core,
                    time: t,
                    qseq,
                    bseq: seq,
                    state: MemberState::Spec,
                    outcome: None,
                }
            })
            .collect()
    }

    /// Opens undo journals for every speculating member of `round` (the
    /// head, if present, runs journal-free — it never rolls back) and
    /// executes all of them concurrently over disjoint `CorePort`s. Cores
    /// within a round are distinct by construction (`mask`), so each task
    /// owns its `MttopCore` + L1 port exclusively.
    fn launch_round(&mut self, round: &mut [EpochMember], profile: bool) {
        let spec = self.cfg.speculation;
        let n_cpus = self.cfg.n_cpus;
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.exec_threads.saturating_sub(1)));
        }
        for m in round.iter() {
            if matches!(m.state, MemberState::Spec) {
                let port = PortId(n_cpus + m.core);
                self.mem.spec_begin(port, spec.undo_sets);
                self.mttops[m.core].spec_save(&mut self.spec_undo[m.core]);
            }
        }

        let t0 = profile.then(Instant::now);
        {
            struct EpochTask<'a> {
                at: Time,
                mc: &'a mut MttopCore,
                port: CorePort<'a>,
                outcome: Option<BatchOutcome>,
            }
            let prog = &self.prog;
            let pool = self.pool.as_ref().expect("pool created above");
            let mut ports: Vec<Option<CorePort<'_>>> = self
                .mem
                .core_ports(&mut self.port_logs)
                .into_iter()
                .map(Some)
                .collect();
            let mut mcs: Vec<Option<&mut MttopCore>> = self.mttops.iter_mut().map(Some).collect();
            let mut tasks: Vec<EpochTask<'_>> = round
                .iter()
                .map(|m| EpochTask {
                    at: m.time,
                    mc: mcs[m.core].take().expect("epoch cores are distinct"),
                    port: ports[n_cpus + m.core].take().expect("epoch ports are distinct"),
                    outcome: None,
                })
                .collect();
            let workers = self.exec_threads.min(tasks.len());
            let chunk = tasks.len().div_ceil(workers);
            let mut chunks = tasks.chunks_mut(chunk);
            let own = chunks.next();
            let step = |task: &mut EpochTask<'_>| {
                task.outcome = Some(task.mc.run_batch(task.at, prog, &mut task.port));
            };
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .map(|rest| {
                    Box::new(move || rest.iter_mut().for_each(step))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.round(jobs, || {
                if let Some(own) = own {
                    own.iter_mut().for_each(step);
                }
            });
            for (m, task) in round.iter_mut().zip(tasks) {
                m.outcome = Some(task.outcome.expect("epoch task ran"));
            }
        }
        if let Some(t) = t0 {
            self.prof_phase[PH_CORE] += t.elapsed();
        }
    }

    /// Forms and runs one speculative epoch headed by `core0`'s live batch
    /// (already popped at `self.now`).
    ///
    /// *Formation* ([`claim_members`]) extracts live MTTOP batch events for
    /// distinct cores from later timestamps. *Execution* ([`launch_round`])
    /// journals every non-head member (L1 undo sets + architectural core
    /// snapshot), then steps the round concurrently. *Commit* walks members
    /// in queue-key order: the events ordered before each member drain
    /// serially first ([`drain_epoch`]), and the member then either commits
    /// (journal discarded, port log replayed — byte-identical to having run
    /// serially at its slot, since nothing that drained touched its core or
    /// L1) or, having been rolled back by a conflict, re-executes serially.
    ///
    /// After every commit the epoch *reforms*: batch completions drained
    /// between member slots schedule fresh batch events (MTTOP batches are
    /// scheduled just-in-time by their last fill, so they rarely coexist in
    /// the queue up front), and a re-scan claims them into the same epoch —
    /// including cores whose earlier member already committed. Each claim's
    /// speculative start state is the serial state at its claim point, and
    /// the drain's conflict rules cover everything ordered between claim
    /// and slot, so the serial-equivalence argument is unchanged. The epoch
    /// thus rolls forward as a pipeline until [`SpeculationConfig::max_epoch`]
    /// claims are spent or a barrier event stops the scan.
    ///
    /// The head member never rolls back: it was the queue head, so no event
    /// drains before its slot.
    fn run_epoch(
        &mut self,
        core0: usize,
        limit: Time,
        trace: bool,
        profile: bool,
        wd_cfg: &ccsvm_engine::WatchdogConfig,
    ) {
        let spec = self.cfg.speculation;
        let n_cpus = self.cfg.n_cpus;
        let horizon = limit.min(self.cfg.max_sim_time);

        // ---- formation --------------------------------------------------
        let mut mask: u128 = 1u128 << core0;
        let mut left = spec.max_epoch.saturating_sub(1);
        let fresh = self.claim_members(horizon, &mut mask, &mut left);
        if fresh.is_empty() {
            self.run_mttop_batch(core0);
            return;
        }

        // ---- speculative execution --------------------------------------
        let mut members: Vec<EpochMember> = Vec::with_capacity(1 + fresh.len());
        members.push(EpochMember {
            core: core0,
            time: self.now,
            qseq: 0,
            bseq: self.mttop_seq[core0],
            state: MemberState::Head,
            outcome: None,
        });
        members.extend(fresh);
        self.spec_stats.epochs += 1;
        self.spec_stats.members += members.len() as u64;
        self.zones += 1;
        self.zone_batches += members.len() as u64;
        self.launch_round(&mut members, profile);

        // ---- ordered commit ---------------------------------------------
        let mut i = 0;
        while i < members.len() {
            if i > 0 {
                let bound = (members[i].time, members[i].qseq);
                if !self.drain_epoch(bound, &mut members, i, trace, profile, wd_cfg) {
                    return; // aborted; uncommitted members already rolled back
                }
                // The member's own queue slot (the head was popped already).
                let (mtime, core, bseq) = (members[i].time, members[i].core, members[i].bseq);
                self.now = mtime;
                self.events += 1;
                self.trace_ev(trace, mtime, &Ev::MttopBatch { core, seq: bseq });
            }
            let m = &mut members[i];
            let core = m.core;
            if m.bseq != self.mttop_seq[core] {
                // Superseded during the epoch (a drained completion
                // rescheduled the core): discard, exactly as serial would. A
                // speculating member cannot go stale — every seq-bump path
                // rolls it back first — but close the journal defensively.
                debug_assert!(
                    !matches!(m.state, MemberState::Spec),
                    "a speculating member went stale without a rollback"
                );
                if matches!(m.state, MemberState::Spec) {
                    self.rollback_member(m);
                }
                self.spec_stats.stale += 1;
            } else {
                match m.state {
                    MemberState::Head | MemberState::Spec => {
                        if matches!(m.state, MemberState::Spec) {
                            self.mem.spec_commit(PortId(n_cpus + core));
                        }
                        self.spec_stats.committed += 1;
                        self.spec_stats.batches_total += 1;
                        let outcome = m.outcome.take().expect("epoch member executed");
                        let t1 = profile.then(Instant::now);
                        let mut log = std::mem::take(&mut self.port_logs[n_cpus + core]);
                        self.replay_log(&mut log);
                        self.port_logs[n_cpus + core] = log;
                        self.apply_mttop_outcome(core, outcome);
                        if let Some(t) = t1 {
                            self.prof_phase[PH_MERGE] += t.elapsed();
                        }
                    }
                    MemberState::RolledBack => self.run_mttop_batch(core),
                }
                if self.main_exited || self.failure.is_some() {
                    self.rollback_from(&mut members, i + 1);
                    return;
                }
            }
            i += 1;
        }
    }

    /// Serially dispatches every queued event whose key orders strictly
    /// before `bound`, applying the epoch conflict rules to the uncommitted
    /// members `members[from..]`:
    ///
    /// * a directory delivery (`DirArrive`) to a still-speculating member's
    ///   L1 rolls that member back *before* dispatch — speculation never
    ///   observes or perturbs a coherence delivery;
    /// * any other core/OS event rolls back **all** uncommitted members
    ///   before dispatch (its synchronous effects can reach arbitrary
    ///   cores); stale batch events are discarded without rollback;
    /// * a live MTTOP batch (one not claimed at formation) runs serially
    ///   in place — its core is never a still-speculating member;
    /// * ECC poison appearing rolls back all members (a poisoned block
    ///   aborts batches, so later members must re-execute serially).
    ///
    /// Returns `false` when the run aborted (watchdog, failure, exit) —
    /// uncommitted members have already been rolled back so the machine
    /// state matches the serial abort exactly.
    fn drain_epoch(
        &mut self,
        bound: (Time, u64),
        members: &mut [EpochMember],
        from: usize,
        trace: bool,
        profile: bool,
        wd_cfg: &ccsvm_engine::WatchdogConfig,
    ) -> bool {
        let n_cpus = self.cfg.n_cpus;
        while let Some(key) = self.queue.peek_key() {
            if key >= bound {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events += 1;
            self.trace_ev(trace, t, &ev);
            match ev {
                Ev::WatchdogTick => {
                    let stale = self.watchdog.observe(self.now, self.progress);
                    if stale >= wd_cfg.quanta {
                        self.rollback_from(members, from);
                        self.watchdog_abort(stale, wd_cfg.period);
                        return false;
                    }
                    self.queue.push(self.now + wd_cfg.period, Ev::WatchdogTick);
                }
                Ev::Mem(me) => {
                    if let Some(port) = me.dir_port() {
                        if let Some(j) = members[from..].iter().position(|m| {
                            matches!(m.state, MemberState::Spec) && n_cpus + m.core == port.0
                        }) {
                            self.rollback_member(&mut members[from + j]);
                        }
                    }
                    let t0 = profile.then(Instant::now);
                    self.dispatch(Ev::Mem(me));
                    if let Some(t0) = t0 {
                        self.prof_phase[PH_UNCORE] += t0.elapsed();
                    }
                    if self.mem.has_poisoned() {
                        self.rollback_from(members, from);
                    }
                    if self.failure.is_some() {
                        self.rollback_from(members, from);
                        return false;
                    }
                }
                Ev::MttopBatch { core, seq } => {
                    if seq == self.mttop_seq[core] {
                        // Only possible for a non-member or an already
                        // rolled-back member core (its reschedule landed
                        // before the old slot); a speculating member's live
                        // event was extracted at formation.
                        debug_assert!(
                            !members[from..]
                                .iter()
                                .any(|m| m.core == core && matches!(m.state, MemberState::Spec)),
                            "live batch drained for a speculating member"
                        );
                        self.run_mttop_batch(core);
                        if self.main_exited || self.failure.is_some() {
                            self.rollback_from(members, from);
                            return false;
                        }
                    }
                }
                Ev::CpuBatch { core, seq } => {
                    if seq == self.cpu_seq[core] {
                        let action = self.step_cpu_batch(core);
                        // Execution touched only the CPU core and its own
                        // L1 (coherence with speculating L1s flows through
                        // queued `DirArrive`s, caught above). OS-entering
                        // actions conflict with everything: a syscall can
                        // backdoor-read a descriptor out of a speculating
                        // L1, fault handling can backdoor-patch PTEs into
                        // one, and an exit aborts the epoch.
                        if !matches!(
                            action,
                            CpuAction::Continue { .. } | CpuAction::Blocked | CpuAction::Idle
                        ) {
                            self.rollback_from(members, from);
                        }
                        let t1 = profile.then(Instant::now);
                        self.apply_cpu_action(core, action);
                        if let Some(t1) = t1 {
                            self.prof_phase[PH_MERGE] += t1.elapsed();
                        }
                        if self.main_exited || self.failure.is_some() {
                            return false;
                        }
                    }
                    // Stale CPU schedule: a pure no-op in serial too.
                }
                other => {
                    self.rollback_from(members, from);
                    let t0 = profile.then(Instant::now);
                    self.dispatch(other);
                    if let Some(t0) = t0 {
                        self.prof_phase[PH_OTHER] += t0.elapsed();
                    }
                    if self.main_exited || self.failure.is_some() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Rolls one speculating member back to its pre-epoch state: L1 undo
    /// journal (or full snapshot on overflow), buffered port log dropped
    /// (its requests were never sent), architectural core state restored
    /// from the undo record. The member then re-executes serially at its
    /// commit slot.
    fn rollback_member(&mut self, m: &mut EpochMember) {
        debug_assert!(matches!(m.state, MemberState::Spec));
        let port = PortId(self.cfg.n_cpus + m.core);
        let overflowed = self.mem.spec_rollback(port);
        self.port_logs[port.0].clear();
        self.mttops[m.core].spec_restore(&self.spec_undo[m.core]);
        m.state = MemberState::RolledBack;
        m.outcome = None;
        self.spec_stats.rolled_back += 1;
        if overflowed {
            self.spec_stats.overflows += 1;
        }
    }

    /// Rolls back every still-speculating member in `members[from..]`.
    fn rollback_from(&mut self, members: &mut [EpochMember], from: usize) {
        let mut any = false;
        for m in &mut members[from..] {
            if matches!(m.state, MemberState::Spec) {
                self.rollback_member(m);
                any = true;
            }
        }
        if any {
            self.spec_stats.rollback_all += 1;
        }
    }

    /// Records a watchdog abort. The dump's `at` is the simulated time of
    /// the *last observed forward progress* — the moment the machine
    /// actually wedged — not the (much later) abort tick, so the diagnostic
    /// points at the interesting cycle.
    fn watchdog_abort(&mut self, stale: u32, period: Time) {
        let reason = format!(
            "no forward progress for {stale} watchdog periods of {period} \
             (last progress at {})",
            self.watchdog.last_progress_at()
        );
        let mut d = self.dump(reason);
        d.at = self.watchdog.last_progress_at();
        self.failure = Some((Outcome::Deadlock, d));
    }

    /// Captures the structured abort diagnostics: who is stuck where.
    fn dump(&self, reason: String) -> DiagnosticDump {
        DiagnosticDump {
            reason,
            at: self.now,
            outstanding: self
                .mem
                .outstanding()
                .into_iter()
                .map(|(p, blocks)| (p.0, blocks))
                .collect(),
            dir_active: self
                .mem
                .dir_active()
                .into_iter()
                .map(|(bank, blocks)| {
                    let txs = blocks
                        .into_iter()
                        .map(|b| (b, self.mem.dir_tx_phase(b).unwrap_or_default()))
                        .collect();
                    (bank.0, txs)
                })
                .collect(),
            poisoned_blocks: self.mem.poisoned_blocks(),
            noc_busy_links: self.net.busy_links(self.now),
            noc_max_backlog: self.net.max_backlog(self.now),
            violation: None,
        }
    }

    // ----- coherence sanitizer ---------------------------------------------

    /// Records a sanitizer violation: the run aborts with
    /// [`Outcome::InvariantViolation`]. When another failure is already
    /// recorded (e.g. the watchdog caught the wedge a lost message caused),
    /// the outcome is *upgraded* — the sanitizer's root cause outranks the
    /// symptom — and the original dump keeps its context.
    fn san_fail(&mut self, v: Violation) {
        match &mut self.failure {
            Some((outcome, dump)) => {
                *outcome = Outcome::InvariantViolation;
                dump.violation = Some(v);
            }
            None => {
                let mut d = self.dump(format!("invariant {} violated", v.invariant));
                d.at = v.at;
                d.violation = Some(v);
                self.failure = Some((Outcome::InvariantViolation, d));
            }
        }
    }

    /// Whether no TLB shootdown is in flight anywhere — the window where
    /// VM-TLB-PT (TLB ⊆ page tables) must hold exactly. Mid-shootdown a
    /// remote TLB legitimately holds the just-unmapped translation until its
    /// IPI/flush lands.
    fn shootdowns_quiescent(&self) -> bool {
        self.shoot_pending.iter().all(|&p| p == 0)
            && self.handlers.iter().all(|h| {
                !matches!(
                    h.active,
                    Some(Active {
                        job: Job::Unmap { .. },
                        ..
                    })
                ) && !h.queue.iter().any(|j| matches!(j, Job::Unmap { .. }))
            })
    }

    /// VM-TLB-PT: every cached translation in every CPU and MTTOP TLB must
    /// agree with the OS page tables. Only called at shootdown-quiescent
    /// points.
    fn check_tlbs(&self) -> Option<Violation> {
        let check = |who: String, entries: Vec<(u64, ccsvm_mem::PhysAddr)>| {
            for (vpn, frame) in entries {
                let va = VirtAddr(vpn * PAGE_BYTES);
                if self.os.translate(va) != Some(frame) {
                    return Some(Violation {
                        invariant: ccsvm_engine::InvariantId::VmTlbPt,
                        at: self.now,
                        detail: format!(
                            "{who} TLB caches {va} -> {frame:?} but the page \
                             tables say {:?}",
                            self.os.translate(va)
                        ),
                    });
                }
            }
            None
        };
        for (i, c) in self.cpus.iter().enumerate() {
            if let Some(v) = check(format!("CPU {i}"), c.tlb_entries()) {
                return Some(v);
            }
        }
        for (i, m) in self.mttops.iter().enumerate() {
            if let Some(v) = check(format!("MTTOP {i}"), m.tlb_entries()) {
                return Some(v);
            }
        }
        None
    }

    /// The end-of-run / on-abort full sweep: every memory invariant over
    /// every resident block, TLB ⊆ page tables, and NOC-CONSERVE over the
    /// whole run's audit counters.
    fn final_check(&mut self) {
        if !self.cfg.sanitizer.enabled {
            return;
        }
        if self
            .failure
            .as_ref()
            .is_some_and(|(_, d)| d.violation.is_some())
        {
            return; // already triaged to a specific invariant
        }
        if let Some(v) = self.mem.check_all(self.now) {
            self.san_fail(v);
            return;
        }
        if self.shootdowns_quiescent() {
            if let Some(v) = self.check_tlbs() {
                self.san_fail(v);
                return;
            }
        }
        let (sent, delivered, sanctioned) = self.net.audit_counters();
        let in_flight = self
            .queue
            .ordered_entries()
            .iter()
            .filter(|(_, e)| matches!(e, Ev::Mem(_)))
            .count() as u64;
        if let Some(detail) = check_conservation(sent, delivered, sanctioned, in_flight) {
            self.san_fail(Violation {
                invariant: ccsvm_engine::InvariantId::NocConserve,
                at: self.now,
                detail,
            });
        }
    }

    /// Applies the configured test-only protocol mutation to `me` when its
    /// nth target-class occurrence comes up. Returns `true` when the event
    /// must be *discarded* (the unsanctioned-loss mutation). Latched: fires
    /// at most once per run.
    fn apply_mutation(&mut self, me: &mut MemEvent) -> bool {
        let Some(m) = self.cfg.sanitizer.mutate else {
            return false;
        };
        if self.mut_done {
            return false;
        }
        let in_class = match m.kind {
            MutationKind::CorruptDirOwner | MutationKind::CorruptTlbEntry => true,
            MutationKind::CorruptGrant | MutationKind::CorruptFillData => me.is_s_grant(),
            MutationKind::DuplicateResp | MutationKind::DropResp => me.is_resp(),
            MutationKind::CorruptSnoopShared => me.is_shared_snoop_resp(),
            MutationKind::CorruptUpdValue => me.is_upd_snoop(),
            MutationKind::CorruptResendEpoch => me.dir_timeout().is_some_and(
                |(bank, block, epoch)| self.mem.corrupt_resend_applicable(bank, block, epoch),
            ),
            // Counted at `Ev::IpiArrive` dispatch, not here.
            MutationKind::SkipTlbInvalidate => false,
        };
        if !in_class {
            return false;
        }
        self.mut_count += 1;
        if self.mut_count < m.nth {
            return false;
        }
        match m.kind {
            MutationKind::CorruptDirOwner => {
                // Clears the directory's owner registration for this block;
                // the owning L1's M/E/O copy becomes unaccounted.
                self.mut_done = self.mem.test_corrupt_dir_owner(me.block());
            }
            MutationKind::CorruptGrant => self.mut_done = me.test_upgrade_s_grant(),
            MutationKind::CorruptFillData => self.mut_done = me.test_flip_s_fill_byte(),
            MutationKind::DuplicateResp => {
                // Re-inject a copy of this response without counting it as
                // sent: a duplicated message.
                self.queue.push(self.now, Ev::Mem(me.clone()));
                self.mut_done = true;
            }
            MutationKind::DropResp => {
                // Discard without sanction: a lost message.
                self.mut_done = true;
                return true;
            }
            MutationKind::CorruptTlbEntry => {
                self.mut_done = self.cpus[0].test_corrupt_tlb();
                // TLB state just changed out from under the hardware: sweep
                // immediately (at a quiescent point) so the violation is
                // pinned to the cycle the corruption appeared rather than to
                // wherever the poisoned translation later sends the core.
                if self.mut_done && self.shootdowns_quiescent() {
                    if let Some(v) = self.check_tlbs() {
                        self.san_fail(v);
                    }
                }
            }
            MutationKind::CorruptSnoopShared => self.mut_done = me.test_clear_snoop_shared(),
            MutationKind::CorruptUpdValue => self.mut_done = me.test_corrupt_upd_value(),
            MutationKind::CorruptResendEpoch => {
                // Arm the transient flag; the bank consumes it while handling
                // this very timeout and abandons one still-pending probe.
                self.mem.arm_corrupt_resend();
                self.mut_done = true;
            }
            MutationKind::SkipTlbInvalidate => unreachable!("not an uncore-event class"),
        }
        false
    }

    fn report(&self) -> RunReport {
        let mut stats = Stats::new();
        for (i, c) in self.cpus.iter().enumerate() {
            stats.merge_prefixed(&format!("cpu.{i}"), &c.stats());
        }
        for (i, m) in self.mttops.iter().enumerate() {
            stats.merge_prefixed(&format!("mttop.{i}"), &m.stats());
        }
        stats.merge_prefixed("mem", &self.mem.stats());
        stats.merge_prefixed("noc", &self.net.stats());
        stats.merge_prefixed("mifd", &self.mifd.stats());
        stats.set_id(stat_id("os.page_faults"), self.os.faults_handled() as f64);
        stats.set_id(stat_id("heap.live_bytes"), self.heap.live_bytes() as f64);
        // Only present when the domain is armed, so fault-free reports stay
        // bit-identical to pre-fault builds.
        if self.snoop_probe_rng.is_some() {
            stats.set_id(
                stat_id("fault.snoop_probe_drops"),
                self.snoop_probe_drops as f64,
            );
        }
        if self.upd_ack_rng.is_some() {
            stats.set_id(stat_id("fault.upd_ack_drops"), self.upd_ack_drops as f64);
        }
        let instructions = self
            .cpus
            .iter()
            .map(|c| c.stats().get("instructions"))
            .sum::<f64>()
            + self
                .mttops
                .iter()
                .map(|m| m.stats().get("thread_instructions"))
                .sum::<f64>();
        let (outcome, diagnostic) = match &self.failure {
            Some((o, d)) => (*o, Some(d.clone())),
            None => (Outcome::Completed, None),
        };
        RunReport {
            time: self.now,
            printed: self.printed.clone(),
            printed_at: self.printed_at.clone(),
            dram_at_print: self.dram_at_print.clone(),
            exit_code: self.exit_code,
            dram_accesses: self.mem.dram_accesses(),
            instructions: instructions as u64,
            events: self.events,
            outcome,
            diagnostic,
            stats,
        }
    }

    // ----- scheduling helpers ---------------------------------------------

    fn sched_cpu_batch(&mut self, core: usize, at: Time) {
        self.cpu_seq[core] += 1;
        let seq = self.cpu_seq[core];
        self.queue
            .push(at.max(self.now), Ev::CpuBatch { core, seq });
    }

    /// Schedules (or reschedules) `core`'s next batch. The wakeup aligns to
    /// the warp scheduler's clocked grid
    /// ([`MttopConfig::wake_grid_cycles`]): completions landing within one
    /// grid tick coalesce into a single batch event, exactly as a clocked
    /// scheduler samples runnable warps at tick edges. Part of the timing
    /// model — every executor (serial, zoned, epochs) observes the same
    /// grid, so results stay bit-identical across `sim_threads`.
    fn sched_mttop_batch(&mut self, core: usize, at: Time) {
        self.mttop_seq[core] += 1;
        let seq = self.mttop_seq[core];
        let mut at = at.max(self.now);
        if self.wake_grid_ps > 0 {
            let ps = at.as_ps();
            at = Time::from_ps(ps.div_ceil(self.wake_grid_ps) * self.wake_grid_ps);
        }
        self.queue.push(at, Ev::MttopBatch { core, seq });
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Mem(mut me) => {
                if self.drop_event(&me) {
                    // A fault-plan-sanctioned loss, exempt from NOC-CONSERVE.
                    self.net.note_sanctioned();
                    return;
                }
                if self.apply_mutation(&mut me) {
                    return; // mutation discarded the event (unsanctioned)
                }
                if self.failure.is_some() {
                    return; // a state mutation was caught at its own cycle
                }
                let san = self.cfg.sanitizer.enabled;
                let block = me.block();
                if san {
                    let (kind, a, b) = me.ring_summary();
                    self.san_ring.record(self.now, kind, a, b);
                    if let Some(v) = self.mem.check_event(self.now, &me) {
                        // Don't deliver a message the protocol can't absorb:
                        // report the conservation violation instead of letting
                        // the bank trip over it.
                        self.san_fail(v);
                        return;
                    }
                }
                self.net.note_delivered();
                let mut completions = std::mem::take(&mut self.completions_buf);
                completions.clear();
                {
                    let queue = &mut self.queue;
                    let mut sent = 0u64;
                    let mut sched = |t: Time, e: MemEvent| {
                        sent += 1;
                        queue.push(t, Ev::Mem(e));
                    };
                    self.mem
                        .handle(self.now, &mut self.net, &mut sched, me, &mut completions);
                    self.net.note_sent(sent);
                }
                if let Some((bank, block)) = self.mem.take_retry_exhausted() {
                    let reason = format!(
                        "directory bank {} exhausted its NACK retry budget on block {block}",
                        bank.0
                    );
                    self.failure = Some((Outcome::RetryBudgetExhausted, self.dump(reason)));
                    self.completions_buf = completions;
                    return;
                }
                if san && self.failure.is_none() {
                    if let Some(v) = self.mem.check_block(self.now, block) {
                        self.san_fail(v);
                    }
                }
                for c in completions.drain(..) {
                    self.route_completion(c);
                }
                self.completions_buf = completions;
            }
            Ev::CpuBatch { core, seq } => {
                if seq != self.cpu_seq[core] {
                    return;
                }
                self.run_cpu_batch(core);
            }
            Ev::MttopBatch { core, seq } => {
                if seq != self.mttop_seq[core] {
                    return;
                }
                self.run_mttop_batch(core);
            }
            Ev::MifdLaunch { cpu, desc } => self.mifd_launch(cpu, desc),
            Ev::ChunkArrive { core, chunk } => {
                self.reserved[core] -= 1;
                let ok = self.mttops[core].start_task(self.now, chunk);
                assert!(ok, "MIFD overcommitted core {core}");
                self.sched_mttop_batch(core, self.now);
            }
            Ev::ResumeSyscall { cpu, ret } => {
                let at = self.cpus[cpu].resume_syscall(self.now, ret);
                self.sched_cpu_batch(cpu, at);
            }
            Ev::FaultToCpu { req, mcore } => {
                // All MTTOP faults are serviced by CPU 0 (the MIFD interrupts
                // a CPU core on behalf of the MTTOP, §3.2.1).
                self.handler_enqueue(
                    0,
                    Job::Remote {
                        mcore,
                        warp: req.warp,
                        va: req.va,
                    },
                );
            }
            Ev::FaultAckAtMttop { mcore, warp } => {
                self.mttops[mcore].fault_resolved(warp, self.now);
                self.sched_mttop_batch(mcore, self.now);
            }
            Ev::IpiArrive {
                target,
                va,
                initiator,
            } => {
                // Mutation hook: ack the IPI but skip the invalidation — the
                // stale translation survives shootdown (⇒ VM-STALE-SHOOT).
                let skip = match self.cfg.sanitizer.mutate {
                    Some(m) if m.kind == MutationKind::SkipTlbInvalidate && !self.mut_done => {
                        self.mut_count += 1;
                        self.mut_count >= m.nth
                    }
                    _ => false,
                };
                if skip {
                    self.mut_done = true;
                } else {
                    self.cpus[target].tlb_invalidate(va);
                }
                if self.cfg.sanitizer.enabled && self.cpus[target].tlb_holds(va) {
                    self.san_fail(Violation {
                        invariant: ccsvm_engine::InvariantId::VmStaleShoot,
                        at: self.now,
                        detail: format!(
                            "CPU {target} still caches a translation for {va} \
                             after acking its shootdown IPI"
                        ),
                    });
                }
                let done = self.now + self.cfg.os.ipi;
                self.cpus[target].preempt_until(done);
                let t = self
                    .net
                    .send(done, self.cpu_nodes[target], self.cpu_nodes[initiator], 8);
                self.queue.push(t, Ev::ShootAck { initiator });
            }
            Ev::FlushArrive {
                target,
                va,
                initiator,
            } => {
                if self.cfg.mttop_selective_shootdown {
                    self.mttops[target].tlb_invalidate(va);
                } else {
                    self.mttops[target].tlb_flush();
                }
                if self.cfg.sanitizer.enabled && self.mttops[target].tlb_holds(va) {
                    self.san_fail(Violation {
                        invariant: ccsvm_engine::InvariantId::VmStaleShoot,
                        at: self.now,
                        detail: format!(
                            "MTTOP {target} still caches a translation for \
                             {va} after acking its shootdown flush"
                        ),
                    });
                }
                let t = self.net.send(
                    self.now,
                    self.mttop_nodes[target],
                    self.cpu_nodes[initiator],
                    8,
                );
                self.queue.push(t, Ev::ShootAck { initiator });
            }
            Ev::HandlerRetry { cpu } => self.handler_issue(cpu, self.now),
            Ev::ShootAck { initiator } => {
                self.shoot_pending[initiator] -= 1;
                if self.shoot_pending[initiator] == 0 {
                    let at = self.cpus[initiator].resume_syscall(self.now, 0);
                    self.sched_cpu_batch(initiator, at);
                    // Shootdown complete: if no other shootdown is in flight
                    // this is a quiescent point, so VM-TLB-PT must hold.
                    if self.cfg.sanitizer.enabled
                        && self.failure.is_none()
                        && self.shootdowns_quiescent()
                    {
                        if let Some(v) = self.check_tlbs() {
                            self.san_fail(v);
                        }
                    }
                }
            }
            Ev::WatchdogTick => unreachable!("handled in the run loop"),
        }
    }

    /// Seeded probe/ack-loss fault domains (`SnoopProbe`, `UpdAck`): returns
    /// `true` when this memory event must be lost. Drops only messages whose
    /// loss the solicitation-round timeout provably recovers from: bank→L1
    /// snoop probes (idempotent, any protocol) and L1→bank `SnoopResp`s that
    /// answer a *write-update* round (the bank ignores Upd payloads and a
    /// resend re-solicits only still-pending ports). Mem events dispatch
    /// serially even under fork-join execution, so the draw order — and the
    /// run — is identical across `sim_threads`.
    fn seeded_drop(&mut self, me: &MemEvent) -> bool {
        if let Some(rng) = &mut self.snoop_probe_rng {
            if me.is_snoop_probe() {
                let cap = self.cfg.fault.snoop_probe.max_drops;
                let roll = rng.next_f64();
                if (cap == 0 || self.snoop_probe_drops < cap)
                    && roll < self.cfg.fault.snoop_probe.drop_rate
                {
                    self.snoop_probe_drops += 1;
                    return true;
                }
            }
        }
        if let Some(rng) = &mut self.upd_ack_rng {
            if let Some((bank, block)) = me.snoop_resp_target() {
                if self.mem.upd_round_active(bank, block) {
                    let cap = self.cfg.fault.upd_ack.max_drops;
                    let roll = rng.next_f64();
                    if (cap == 0 || self.upd_ack_drops < cap)
                        && roll < self.cfg.fault.upd_ack.drop_rate
                    {
                        self.upd_ack_drops += 1;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Deterministic event-drop fault hooks (`FaultConfig::drop_*` test
    /// knobs): returns `true` when this memory event must be lost.
    fn drop_event(&mut self, me: &MemEvent) -> bool {
        if self.seeded_drop(me) {
            return true;
        }
        let f = &self.cfg.fault;
        if f.drop_data_delivery.is_none() && f.blackhole_resp.is_none() && f.drop_one_resp.is_none()
        {
            return false;
        }
        if me.is_data_delivery() {
            self.data_deliveries += 1;
            if f.drop_data_delivery == Some(self.data_deliveries) {
                return true;
            }
        }
        if let Some(block) = me.resp_block() {
            self.resps_seen += 1;
            if f.blackhole_resp == Some(self.resps_seen) {
                self.blackholed_block = Some(block);
            }
            if self.blackholed_block == Some(block) {
                return true;
            }
            if f.drop_one_resp == Some(self.resps_seen) {
                return true;
            }
        }
        false
    }

    fn route_completion(&mut self, c: Completion) {
        self.progress += 1;
        if c.poisoned {
            let reason = format!(
                "port {} consumed an ECC-poisoned block (token {:#x})",
                c.port.0, c.token
            );
            self.failure = Some((Outcome::Poisoned, self.dump(reason)));
            return;
        }
        let (token, value) = (c.token, c.value);
        let kind = token >> KIND_SHIFT;
        let idx = ((token >> IDX_SHIFT) & 0xFFF) as usize;
        match kind {
            KIND_CPU => {
                let at = self.cpus[idx].on_completion(self.now, token, value);
                self.sched_cpu_batch(idx, at);
            }
            KIND_MTTOP => {
                let at = self.mttops[idx].on_completion(self.now, token, value);
                self.sched_mttop_batch(idx, at);
            }
            KIND_HANDLER => self.handler_continue(idx),
            other => panic!("unroutable completion token kind {other}"),
        }
    }

    // ----- core batches ----------------------------------------------------

    /// Replays one port's buffered uncore effects into the NoC/event queue.
    fn replay_log(&mut self, log: &mut PortLog) {
        let queue = &mut self.queue;
        let mut sent = 0u64;
        let mut sched = |t: Time, e: MemEvent| {
            sent += 1;
            queue.push(t, Ev::Mem(e));
        };
        log.replay(&mut self.net, &mut sched);
        self.net.note_sent(sent);
    }

    /// Steps one CPU batch (core execution + uncore replay) and returns the
    /// merge action *unapplied*: execution touches only the CPU core and its
    /// own L1, while the action may enter the OS — the epoch drain uses the
    /// split to roll back speculation before OS-entering actions only
    /// (DESIGN §12).
    fn step_cpu_batch(&mut self, core: usize) -> CpuAction {
        let profile = self.cfg.host_profile;
        let t0 = profile.then(Instant::now);
        let mut log = std::mem::take(&mut self.port_logs[core]);
        let action = self.cpus[core].run_batch(
            self.now,
            &self.prog,
            &mut self.mem.core_port(PortId(core), &mut log),
        );
        if let Some(t) = t0 {
            self.prof_phase[PH_CORE] += t.elapsed();
        }
        let t1 = profile.then(Instant::now);
        self.replay_log(&mut log);
        self.port_logs[core] = log;
        if let Some(t) = t1 {
            self.prof_phase[PH_MERGE] += t.elapsed();
        }
        action
    }

    fn run_cpu_batch(&mut self, core: usize) {
        let action = self.step_cpu_batch(core);
        let t1 = self.cfg.host_profile.then(Instant::now);
        self.apply_cpu_action(core, action);
        if let Some(t) = t1 {
            self.prof_phase[PH_MERGE] += t.elapsed();
        }
    }

    fn apply_cpu_action(&mut self, core: usize, action: CpuAction) {
        match action {
            CpuAction::Continue { at } => {
                self.progress += 1;
                self.sched_cpu_batch(core, at);
            }
            CpuAction::Blocked | CpuAction::Idle => {}
            CpuAction::Syscall => {
                self.progress += 1;
                self.handle_syscall(core);
            }
            CpuAction::PageFault { va } => {
                self.progress += 1;
                self.handler_enqueue(core, Job::Local { va });
            }
            CpuAction::Exited => {
                self.progress += 1;
                self.thread_exited(core);
            }
            CpuAction::Poisoned => {
                let reason = format!("CPU {core} accessed an ECC-poisoned block");
                self.failure = Some((Outcome::Poisoned, self.dump(reason)));
            }
        }
    }

    fn run_mttop_batch(&mut self, core: usize) {
        self.spec_stats.batches_total += 1;
        let profile = self.cfg.host_profile;
        let t0 = profile.then(Instant::now);
        let port = PortId(self.cfg.n_cpus + core);
        let mut log = std::mem::take(&mut self.port_logs[port.0]);
        let outcome = self.mttops[core].run_batch(
            self.now,
            &self.prog,
            &mut self.mem.core_port(port, &mut log),
        );
        if let Some(t) = t0 {
            self.prof_phase[PH_CORE] += t.elapsed();
        }
        let t1 = profile.then(Instant::now);
        self.replay_log(&mut log);
        self.port_logs[port.0] = log;
        self.apply_mttop_outcome(core, outcome);
        if let Some(t) = t1 {
            self.prof_phase[PH_MERGE] += t.elapsed();
        }
    }

    fn apply_mttop_outcome(&mut self, core: usize, outcome: BatchOutcome) {
        for req in outcome.faults {
            self.mifd.count_fault_forward();
            // MTTOP -> MIFD -> CPU0 interrupt chain (§3.2.1).
            let t1 = self
                .net
                .send(self.now, self.mttop_nodes[core], self.mifd_node, 16);
            let t2 = self.net.send(t1, self.mifd_node, self.cpu_nodes[0], 16);
            self.queue.push(t2, Ev::FaultToCpu { req, mcore: core });
        }
        if outcome.poisoned {
            let reason = format!("MTTOP {core} accessed an ECC-poisoned block");
            self.failure = Some((Outcome::Poisoned, self.dump(reason)));
            return;
        }
        match outcome.action {
            MttopAction::Continue { at } => {
                self.progress += 1;
                self.sched_mttop_batch(core, at);
            }
            MttopAction::Blocked | MttopAction::Idle => {}
        }
    }

    /// Steps a zone of same-timestamp live MTTOP batches concurrently, then
    /// merges their buffered effects serially in pop order. Workers get
    /// contiguous task chunks; chunk 0 runs on this thread. Determinism does
    /// not depend on the chunking — each task touches only its own core and
    /// port, and all shared state waits for the merge.
    fn run_mttop_zone(&mut self, cores: &[usize]) {
        let profile = self.cfg.host_profile;
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.exec_threads.saturating_sub(1)));
        }
        let t0 = profile.then(Instant::now);
        let now = self.now;
        let n_cpus = self.cfg.n_cpus;
        let prog = &self.prog;
        let mut results: Vec<(usize, BatchOutcome)> = Vec::with_capacity(cores.len());
        {
            struct ZoneTask<'a> {
                core: usize,
                mc: &'a mut MttopCore,
                port: CorePort<'a>,
                outcome: Option<BatchOutcome>,
            }
            let pool = self.pool.as_ref().expect("pool created above");
            let mut ports: Vec<Option<CorePort<'_>>> = self
                .mem
                .core_ports(&mut self.port_logs)
                .into_iter()
                .map(Some)
                .collect();
            let mut mcs: Vec<Option<&mut MttopCore>> = self.mttops.iter_mut().map(Some).collect();
            let mut tasks: Vec<ZoneTask<'_>> = cores
                .iter()
                .map(|&c| ZoneTask {
                    core: c,
                    mc: mcs[c].take().expect("zone cores are distinct"),
                    port: ports[n_cpus + c].take().expect("zone ports are distinct"),
                    outcome: None,
                })
                .collect();
            let workers = self.exec_threads.min(tasks.len());
            let chunk = tasks.len().div_ceil(workers);
            let mut chunks = tasks.chunks_mut(chunk);
            let own = chunks.next();
            let step = |task: &mut ZoneTask<'_>| {
                task.outcome = Some(task.mc.run_batch(now, prog, &mut task.port));
            };
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .map(|rest| {
                    Box::new(move || rest.iter_mut().for_each(step))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.round(jobs, || {
                if let Some(own) = own {
                    own.iter_mut().for_each(step);
                }
            });
            for task in tasks {
                results.push((task.core, task.outcome.expect("zone task ran")));
            }
        }
        if let Some(t) = t0 {
            self.prof_phase[PH_CORE] += t.elapsed();
        }
        let t1 = profile.then(Instant::now);
        for (core, outcome) in results {
            let mut log = std::mem::take(&mut self.port_logs[n_cpus + core]);
            self.replay_log(&mut log);
            self.port_logs[n_cpus + core] = log;
            self.apply_mttop_outcome(core, outcome);
            // Zones form only with no poison in the system, so no member can
            // abort the run mid-merge (serial would have executed them all).
            debug_assert!(self.failure.is_none(), "zone member aborted mid-merge");
        }
        if let Some(t) = t1 {
            self.prof_phase[PH_MERGE] += t.elapsed();
        }
    }

    fn thread_exited(&mut self, core: usize) {
        self.cpus[core].stop_thread();
        if core == 0 {
            self.main_exited = true;
            self.exit_code = self.cpus[0].reg(1);
        }
    }

    // ----- syscalls ---------------------------------------------------------

    fn handle_syscall(&mut self, core: usize) {
        let num = self.cpus[core].reg(1);
        let a = self.cpus[core].reg(2);
        let b = self.cpus[core].reg(3);
        let syscall_done = self.now + self.cfg.os.syscall;
        match num {
            sys::EXIT_THREAD => self.thread_exited(core),
            sys::MALLOC => {
                let ret = self.heap.malloc(a).map_or(0, |v| v.0);
                let at = self.cpus[core].resume_syscall(syscall_done, ret);
                self.sched_cpu_batch(core, at);
            }
            sys::FREE => {
                self.heap.free(VirtAddr(a));
                let at = self.cpus[core].resume_syscall(syscall_done, 0);
                self.sched_cpu_batch(core, at);
            }
            sys::PRINT_INT => {
                self.printed.push(format!("{}", a as i64));
                self.printed_at.push(self.now);
                self.dram_at_print.push(self.mem.dram_accesses());
                let at = self.cpus[core].resume_syscall(syscall_done, 0);
                self.sched_cpu_batch(core, at);
            }
            sys::PRINT_FLOAT => {
                self.printed.push(format!("{}", f64::from_bits(a)));
                self.printed_at.push(self.now);
                self.dram_at_print.push(self.mem.dram_accesses());
                let at = self.cpus[core].resume_syscall(syscall_done, 0);
                self.sched_cpu_batch(core, at);
            }
            sys::MIFD_LAUNCH => {
                // Read the 4-word descriptor from guest memory (coherent
                // snapshot: the CPU just wrote it).
                let w = self.guest_read_words(a, 4);
                let desc = [w[0], w[1], w[2], w[3]];
                assert!(
                    (desc[0] as usize) < self.prog.text.len(),
                    "launch entry PC {} outside text",
                    desc[0]
                );
                let t = self
                    .net
                    .send(syscall_done, self.cpu_nodes[core], self.mifd_node, 40);
                self.queue.push(t, Ev::MifdLaunch { cpu: core, desc });
                // The CPU stays blocked until the MIFD responds.
            }
            sys::SPAWN_CTHREAD => {
                let target = self.cpus.iter().position(|c| !c.is_running());
                let ret = match target {
                    Some(tc) => {
                        let cr3 = self.os.cr3();
                        self.cpus[tc].start_thread(
                            syscall_done,
                            a as usize,
                            b,
                            tc as u64,
                            cr3,
                            self.kexit,
                        );
                        self.sched_cpu_batch(tc, syscall_done);
                        tc as u64
                    }
                    None => u64::MAX, // -1: no idle CPU core
                };
                let at = self.cpus[core].resume_syscall(syscall_done, ret);
                self.sched_cpu_batch(core, at);
            }
            sys::MUNMAP => {
                self.cpus[core].tlb_invalidate(VirtAddr(a));
                self.handler_enqueue(core, Job::Unmap { va: VirtAddr(a) });
                // Blocked until all shootdown acks arrive.
            }
            other => panic!("unknown syscall {other} on CPU {core}"),
        }
    }

    fn mifd_launch(&mut self, cpu: usize, desc: [u64; 4]) {
        let [entry, args, first, last] = desc;
        // Tasks dispatch in SIMD-width (8-thread) chunks (paper 4.3),
        // independent of the core's issue organisation.
        let span = 8usize;
        let free: Vec<usize> = self
            .mttops
            .iter()
            .zip(&self.reserved)
            .map(|(m, r)| m.free_chunks(span).saturating_sub(*r))
            .collect();
        match self.mifd.plan_launch(first, last, span, &free) {
            None => {
                let err = self.mifd.take_error();
                debug_assert!(err);
                let t = self
                    .net
                    .send(self.now, self.mifd_node, self.cpu_nodes[cpu], 8);
                self.queue.push(t, Ev::ResumeSyscall { cpu, ret: 1 });
            }
            Some(chunks) => {
                let n = chunks.len() as u64;
                for (k, c) in chunks.into_iter().enumerate() {
                    self.reserved[c.core] += 1;
                    let depart = self.now + times(self.cfg.os.mifd_chunk, k as u64);
                    let t = self
                        .net
                        .send(depart, self.mifd_node, self.mttop_nodes[c.core], 40);
                    self.queue.push(
                        t,
                        Ev::ChunkArrive {
                            core: c.core,
                            chunk: TaskChunk {
                                entry: entry as usize,
                                args,
                                first_tid: c.first_tid,
                                last_tid: c.last_tid,
                                cr3: self.os.cr3(),
                                ra: self.kexit,
                            },
                        },
                    );
                }
                let depart = self.now + times(self.cfg.os.mifd_chunk, n);
                let t = self
                    .net
                    .send(depart, self.mifd_node, self.cpu_nodes[cpu], 8);
                self.queue.push(t, Ev::ResumeSyscall { cpu, ret: 0 });
            }
        }
    }

    // ----- OS handler work on CPU cores -------------------------------------

    fn handler_enqueue(&mut self, cpu: usize, job: Job) {
        self.handlers[cpu].queue.push_back(job);
        if self.handlers[cpu].active.is_none() {
            self.handler_start_next(cpu);
        }
    }

    fn handler_start_next(&mut self, cpu: usize) {
        let Some(job) = self.handlers[cpu].queue.pop_front() else {
            return;
        };
        let writes = match job {
            Job::Local { va } | Job::Remote { va, .. } => self.os.map_page(va),
            Job::Unmap { va } => self.os.unmap_page(va),
        };
        self.handlers[cpu].active = Some(Active {
            job,
            writes,
            next: 0,
        });
        // Trap + handler bookkeeping cost, then the PTE stores.
        let start = self.now + self.cfg.os.page_fault;
        self.cpus[cpu].preempt_until(start);
        self.handler_issue(cpu, start);
    }

    /// Issues the active job's remaining PTE stores through this CPU's port.
    fn handler_issue(&mut self, cpu: usize, mut at: Time) {
        loop {
            let Some(active) = self.handlers[cpu].active.as_ref() else {
                return;
            };
            let Some(w) = active.writes.get(active.next).copied() else {
                self.handler_finish(cpu, at);
                return;
            };
            let token = prefix(KIND_HANDLER, cpu) | 1;
            let access = Access::Write {
                paddr: w.addr,
                size: 8,
                value: w.value,
            };
            let result = {
                let queue = &mut self.queue;
                let mut sent = 0u64;
                let mut sched = |t: Time, e: MemEvent| {
                    sent += 1;
                    queue.push(t, Ev::Mem(e));
                };
                let r = self
                    .mem
                    .access(at, &mut self.net, &mut sched, PortId(cpu), token, access);
                self.net.note_sent(sent);
                r
            };
            match result {
                AccessResult::Hit { finish, .. } => {
                    self.handlers[cpu].active.as_mut().expect("active").next += 1;
                    self.progress += 1;
                    at = finish;
                }
                AccessResult::Pending => return, // continue on completion
                AccessResult::Retry => {
                    // Yield to the event loop so the port's MSHRs can drain.
                    self.queue
                        .push(at + self.cfg.cpu.clock.period(), Ev::HandlerRetry { cpu });
                    return;
                }
                AccessResult::Poisoned => {
                    let reason = format!("OS handler on CPU {cpu} stored to an ECC-poisoned block");
                    self.failure = Some((Outcome::Poisoned, self.dump(reason)));
                    return;
                }
            }
        }
    }

    fn handler_continue(&mut self, cpu: usize) {
        if let Some(active) = self.handlers[cpu].active.as_mut() {
            active.next += 1;
        }
        self.handler_issue(cpu, self.now);
    }

    fn handler_finish(&mut self, cpu: usize, at: Time) {
        let active = self.handlers[cpu].active.take().expect("active job");
        self.cpus[cpu].preempt_until(at);
        match active.job {
            Job::Local { .. } => {
                let resume = self.cpus[cpu].fault_resolved(at);
                self.sched_cpu_batch(cpu, resume);
            }
            Job::Remote { mcore, warp, .. } => {
                // Ack: CPU -> MIFD -> MTTOP core.
                let t1 = self.net.send(at, self.cpu_nodes[cpu], self.mifd_node, 8);
                let t2 = self
                    .net
                    .send(t1, self.mifd_node, self.mttop_nodes[mcore], 8);
                self.queue.push(t2, Ev::FaultAckAtMttop { mcore, warp });
            }
            Job::Unmap { va } => {
                // TLB shootdown: selective IPIs to the other CPUs, flush-all
                // to every MTTOP (the paper's conservative choice, §3.2.1).
                let mut pending = 0;
                for i in 0..self.cpus.len() {
                    if i != cpu {
                        let t = self.net.send(at, self.cpu_nodes[cpu], self.cpu_nodes[i], 8);
                        self.queue.push(
                            t,
                            Ev::IpiArrive {
                                target: i,
                                va,
                                initiator: cpu,
                            },
                        );
                        pending += 1;
                    }
                }
                for i in 0..self.mttops.len() {
                    let t1 = self.net.send(at, self.cpu_nodes[cpu], self.mifd_node, 8);
                    let t2 = self.net.send(t1, self.mifd_node, self.mttop_nodes[i], 8);
                    self.queue.push(
                        t2,
                        Ev::FlushArrive {
                            target: i,
                            va,
                            initiator: cpu,
                        },
                    );
                    pending += 1;
                }
                if pending == 0 {
                    let resume = self.cpus[cpu].resume_syscall(at, 0);
                    self.sched_cpu_batch(cpu, resume);
                } else {
                    self.shoot_pending[cpu] = pending;
                }
            }
        }
        if self.handlers[cpu].active.is_none() && !self.handlers[cpu].queue.is_empty() {
            self.handler_start_next(cpu);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Any change below is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

fn bad_tag(what: &'static str, tag: u8) -> SnapError {
    SnapError::Corrupt {
        what: format!("unknown {what} tag {tag}"),
    }
}

/// Fingerprint of a `SystemConfig`, normalized so host-only execution knobs
/// don't partition snapshots: a checkpoint taken at one `sim_threads` /
/// `host_profile` setting restores at any other (the executors are
/// bit-identical by construction, DESIGN.md §7). Public because sweep
/// tooling keys jobs and result-cache entries by this hash.
pub fn config_hash(cfg: &SystemConfig) -> u64 {
    let mut c = cfg.clone();
    c.sim_threads = 1;
    c.host_profile = false;
    // The sanitizer observes but never perturbs, so its enable switch and
    // ring size don't partition snapshots either: a checkpoint from a
    // sanitizer-off run restores into a sanitizer-on replay (the whole
    // point of triage). A configured *mutation* stays in the hash — it
    // changes simulated behavior.
    c.sanitizer.enabled = false;
    c.sanitizer.ring_capacity = 0;
    // The decoded-superblock cache is a pure host-perf knob (bit-identical
    // on/off, DESIGN §11): a cache-off checkpoint restores into a cache-on
    // run and vice versa.
    c.sb_cache = true;
    // The speculative epoch executor is bit-identical on/off at every
    // setting (DESIGN §12): checkpoints cross speculation configs freely.
    c.speculation = SpeculationConfig::default();
    ccsvm_snap::fnv1a(format!("{c:?}").as_bytes())
}

impl Outcome {
    pub(crate) fn snap_tag(self) -> u8 {
        match self {
            Outcome::Completed => 0,
            Outcome::Deadlock => 1,
            Outcome::Poisoned => 2,
            Outcome::RetryBudgetExhausted => 3,
            Outcome::InvariantViolation => 4,
        }
    }

    pub(crate) fn from_snap_tag(tag: u8) -> Result<Outcome, SnapError> {
        Ok(match tag {
            0 => Outcome::Completed,
            1 => Outcome::Deadlock,
            2 => Outcome::Poisoned,
            3 => Outcome::RetryBudgetExhausted,
            4 => Outcome::InvariantViolation,
            other => return Err(bad_tag("Outcome", other)),
        })
    }
}

impl DiagnosticDump {
    fn save(&self, w: &mut SnapWriter) {
        w.put_str(&self.reason);
        w.put_u64(self.at.as_ps());
        w.put_usize(self.outstanding.len());
        for (port, blocks) in &self.outstanding {
            w.put_usize(*port);
            w.put_usize(blocks.len());
            for b in blocks {
                w.put_u64(*b);
            }
        }
        w.put_usize(self.dir_active.len());
        for (bank, txs) in &self.dir_active {
            w.put_usize(*bank);
            w.put_usize(txs.len());
            for (block, phase) in txs {
                w.put_u64(*block);
                w.put_str(phase);
            }
        }
        w.put_usize(self.poisoned_blocks.len());
        for b in &self.poisoned_blocks {
            w.put_u64(*b);
        }
        w.put_usize(self.noc_busy_links);
        w.put_u64(self.noc_max_backlog.as_ps());
        match &self.violation {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save(w);
            }
        }
    }

    fn load_snap(r: &mut SnapReader<'_>) -> Result<DiagnosticDump, SnapError> {
        let reason = r.get_str()?.to_string();
        let at = Time::from_ps(r.get_u64()?);
        let mut outstanding = Vec::new();
        for _ in 0..r.get_usize()? {
            let port = r.get_usize()?;
            let mut blocks = Vec::new();
            for _ in 0..r.get_usize()? {
                blocks.push(r.get_u64()?);
            }
            outstanding.push((port, blocks));
        }
        let mut dir_active = Vec::new();
        for _ in 0..r.get_usize()? {
            let bank = r.get_usize()?;
            let mut txs = Vec::new();
            for _ in 0..r.get_usize()? {
                let block = r.get_u64()?;
                txs.push((block, r.get_str()?.to_string()));
            }
            dir_active.push((bank, txs));
        }
        let mut poisoned_blocks = Vec::new();
        for _ in 0..r.get_usize()? {
            poisoned_blocks.push(r.get_u64()?);
        }
        let noc_busy_links = r.get_usize()?;
        let noc_max_backlog = Time::from_ps(r.get_u64()?);
        let violation = if r.get_bool()? {
            let mut v = Violation::default();
            v.load(r)?;
            Some(v)
        } else {
            None
        };
        Ok(DiagnosticDump {
            reason,
            at,
            outstanding,
            dir_active,
            poisoned_blocks,
            noc_busy_links,
            noc_max_backlog,
            violation,
        })
    }
}

impl Job {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Job::Local { va } => {
                w.put_u8(0);
                w.put_u64(va.0);
            }
            Job::Remote { mcore, warp, va } => {
                w.put_u8(1);
                w.put_usize(*mcore);
                w.put_usize(*warp);
                w.put_u64(va.0);
            }
            Job::Unmap { va } => {
                w.put_u8(2);
                w.put_u64(va.0);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Job, SnapError> {
        Ok(match r.get_u8()? {
            0 => Job::Local {
                va: VirtAddr(r.get_u64()?),
            },
            1 => Job::Remote {
                mcore: r.get_usize()?,
                warp: r.get_usize()?,
                va: VirtAddr(r.get_u64()?),
            },
            2 => Job::Unmap {
                va: VirtAddr(r.get_u64()?),
            },
            other => return Err(bad_tag("Job", other)),
        })
    }
}

impl Active {
    fn save(&self, w: &mut SnapWriter) {
        self.job.save(w);
        w.put_usize(self.writes.len());
        for pw in &self.writes {
            w.put_u64(pw.addr.0);
            w.put_u64(pw.value);
        }
        w.put_usize(self.next);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Active, SnapError> {
        let job = Job::load(r)?;
        let mut writes = Vec::new();
        for _ in 0..r.get_usize()? {
            let addr = ccsvm_mem::PhysAddr(r.get_u64()?);
            writes.push(PteWrite {
                addr,
                value: r.get_u64()?,
            });
        }
        Ok(Active {
            job,
            writes,
            next: r.get_usize()?,
        })
    }
}

impl Handler {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.queue.len());
        for job in &self.queue {
            job.save(w);
        }
        match &self.active {
            None => w.put_bool(false),
            Some(a) => {
                w.put_bool(true);
                a.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Handler, SnapError> {
        let mut queue = VecDeque::new();
        for _ in 0..r.get_usize()? {
            queue.push_back(Job::load(r)?);
        }
        let active = if r.get_bool()? {
            Some(Active::load(r)?)
        } else {
            None
        };
        Ok(Handler { queue, active })
    }
}

impl Ev {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Ev::Mem(me) => {
                w.put_u8(0);
                me.save(w);
            }
            Ev::CpuBatch { core, seq } => {
                w.put_u8(1);
                w.put_usize(*core);
                w.put_u64(*seq);
            }
            Ev::MttopBatch { core, seq } => {
                w.put_u8(2);
                w.put_usize(*core);
                w.put_u64(*seq);
            }
            Ev::MifdLaunch { cpu, desc } => {
                w.put_u8(3);
                w.put_usize(*cpu);
                for d in desc {
                    w.put_u64(*d);
                }
            }
            Ev::ChunkArrive { core, chunk } => {
                w.put_u8(4);
                w.put_usize(*core);
                chunk.save(w);
            }
            Ev::ResumeSyscall { cpu, ret } => {
                w.put_u8(5);
                w.put_usize(*cpu);
                w.put_u64(*ret);
            }
            Ev::FaultToCpu { req, mcore } => {
                w.put_u8(6);
                req.save(w);
                w.put_usize(*mcore);
            }
            Ev::FaultAckAtMttop { mcore, warp } => {
                w.put_u8(7);
                w.put_usize(*mcore);
                w.put_usize(*warp);
            }
            Ev::IpiArrive {
                target,
                va,
                initiator,
            } => {
                w.put_u8(8);
                w.put_usize(*target);
                w.put_u64(va.0);
                w.put_usize(*initiator);
            }
            Ev::FlushArrive {
                target,
                va,
                initiator,
            } => {
                w.put_u8(9);
                w.put_usize(*target);
                w.put_u64(va.0);
                w.put_usize(*initiator);
            }
            Ev::ShootAck { initiator } => {
                w.put_u8(10);
                w.put_usize(*initiator);
            }
            Ev::HandlerRetry { cpu } => {
                w.put_u8(11);
                w.put_usize(*cpu);
            }
            Ev::WatchdogTick => w.put_u8(12),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Ev, SnapError> {
        Ok(match r.get_u8()? {
            0 => Ev::Mem(MemEvent::load(r)?),
            1 => Ev::CpuBatch {
                core: r.get_usize()?,
                seq: r.get_u64()?,
            },
            2 => Ev::MttopBatch {
                core: r.get_usize()?,
                seq: r.get_u64()?,
            },
            3 => {
                let cpu = r.get_usize()?;
                let mut desc = [0u64; 4];
                for d in &mut desc {
                    *d = r.get_u64()?;
                }
                Ev::MifdLaunch { cpu, desc }
            }
            4 => Ev::ChunkArrive {
                core: r.get_usize()?,
                chunk: TaskChunk::load(r)?,
            },
            5 => Ev::ResumeSyscall {
                cpu: r.get_usize()?,
                ret: r.get_u64()?,
            },
            6 => Ev::FaultToCpu {
                req: PageFaultReq::load(r)?,
                mcore: r.get_usize()?,
            },
            7 => Ev::FaultAckAtMttop {
                mcore: r.get_usize()?,
                warp: r.get_usize()?,
            },
            8 => Ev::IpiArrive {
                target: r.get_usize()?,
                va: VirtAddr(r.get_u64()?),
                initiator: r.get_usize()?,
            },
            9 => Ev::FlushArrive {
                target: r.get_usize()?,
                va: VirtAddr(r.get_u64()?),
                initiator: r.get_usize()?,
            },
            10 => Ev::ShootAck {
                initiator: r.get_usize()?,
            },
            11 => Ev::HandlerRetry {
                cpu: r.get_usize()?,
            },
            12 => Ev::WatchdogTick,
            other => return Err(bad_tag("Ev", other)),
        })
    }
}

/// Reads a sequence that must have exactly `dst.len()` `u64` entries
/// (config-derived length; a mismatch means the wrong config).
fn load_exact_u64s(r: &mut SnapReader<'_>, dst: &mut [u64], what: &str) -> Result<(), SnapError> {
    let n = r.get_usize()?;
    if n != dst.len() {
        return Err(SnapError::Corrupt {
            what: format!("snapshot has {n} {what} entries, machine has {}", dst.len()),
        });
    }
    for v in dst {
        *v = r.get_u64()?;
    }
    Ok(())
}

/// As [`load_exact_u64s`] for `usize` slices.
fn load_exact_usizes(
    r: &mut SnapReader<'_>,
    dst: &mut [usize],
    what: &str,
) -> Result<(), SnapError> {
    let n = r.get_usize()?;
    if n != dst.len() {
        return Err(SnapError::Corrupt {
            what: format!("snapshot has {n} {what} entries, machine has {}", dst.len()),
        });
    }
    for v in dst {
        *v = r.get_usize()?;
    }
    Ok(())
}

impl Snapshot for Machine {
    fn save(&self, w: &mut SnapWriter) {
        // Not serialized, and why:
        //  * `cfg`, `prog`, node placement, `kexit` — the restoring caller
        //    supplies the same config + program; `Machine::new` re-derives
        //    them (the header's config hash guards the "same config" part).
        //  * `completions_buf`, `port_logs`, `mem` scratch — drained between
        //    dispatched events; checkpoints only happen at such boundaries.
        //  * `prof_phase`, `zones`, `zone_batches` — host-side profiling
        //    telemetry, not simulated state (DESIGN.md §8); excluding them
        //    keeps snapshot bytes identical across `sim_threads` settings.
        //  * `san_ring` — triage telemetry, not simulated state; excluding
        //    it keeps snapshot bytes identical across sanitizer settings.
        let s = w.begin_section("machine");
        w.put_u64(self.now.as_ps());
        w.put_bool(self.started);
        w.put_bool(self.main_exited);
        w.put_u64(self.exit_code);
        w.put_u64(self.progress);
        w.put_u64(self.events);
        w.put_usize(self.printed.len());
        for i in 0..self.printed.len() {
            w.put_str(&self.printed[i]);
            w.put_u64(self.printed_at[i].as_ps());
            w.put_u64(self.dram_at_print[i]);
        }
        self.watchdog.save(w);
        match &self.failure {
            None => w.put_bool(false),
            Some((outcome, dump)) => {
                w.put_bool(true);
                w.put_u8(outcome.snap_tag());
                dump.save(w);
            }
        }
        w.put_u64(self.data_deliveries);
        w.put_u64(self.resps_seen);
        match self.blackholed_block {
            None => w.put_bool(false),
            Some(b) => {
                w.put_bool(true);
                w.put_u64(b);
            }
        }
        w.put_u64(self.mut_count);
        w.put_bool(self.mut_done);
        // Probe/ack-loss fault streams (schema v4): presence mirrors the
        // config, but the stream *position* is run state and must survive a
        // checkpoint taken mid-plan.
        for rng in [&self.snoop_probe_rng, &self.upd_ack_rng] {
            match rng {
                Some(s) => {
                    w.put_bool(true);
                    w.put_u64(s.state());
                }
                None => w.put_bool(false),
            }
        }
        w.put_u64(self.snoop_probe_drops);
        w.put_u64(self.upd_ack_drops);
        w.put_usize(self.cpu_seq.len());
        for v in &self.cpu_seq {
            w.put_u64(*v);
        }
        w.put_usize(self.mttop_seq.len());
        for v in &self.mttop_seq {
            w.put_u64(*v);
        }
        w.put_usize(self.shoot_pending.len());
        for v in &self.shoot_pending {
            w.put_usize(*v);
        }
        w.put_usize(self.reserved.len());
        for v in &self.reserved {
            w.put_usize(*v);
        }
        w.put_usize(self.handlers.len());
        for h in &self.handlers {
            h.save(w);
        }
        w.end_section(s);

        // The event queue, in dispatch order. Restore re-pushes in that
        // order into a fresh queue: push-seqs renumber, but the relative
        // FIFO order among equal-time events — the part that determines
        // behaviour — is preserved exactly.
        let s = w.begin_section("queue");
        let entries = self.queue.ordered_entries();
        w.put_usize(entries.len());
        for (t, ev) in entries {
            w.put_u64(t.as_ps());
            ev.save(w);
        }
        w.end_section(s);

        let s = w.begin_section("cpus");
        w.put_usize(self.cpus.len());
        for c in &self.cpus {
            c.save(w);
        }
        w.end_section(s);

        let s = w.begin_section("mttops");
        w.put_usize(self.mttops.len());
        for m in &self.mttops {
            m.save(w);
        }
        w.end_section(s);

        let s = w.begin_section("mifd");
        self.mifd.save(w);
        w.end_section(s);

        let s = w.begin_section("mem");
        self.mem.save(w);
        w.end_section(s);

        let s = w.begin_section("net");
        self.net.save(w);
        w.end_section(s);

        let s = w.begin_section("os");
        self.os.save(w);
        w.end_section(s);

        let s = w.begin_section("heap");
        self.heap.save(w);
        w.end_section(s);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let end = r.begin_section("machine")?;
        self.now = Time::from_ps(r.get_u64()?);
        self.started = r.get_bool()?;
        self.main_exited = r.get_bool()?;
        self.exit_code = r.get_u64()?;
        self.progress = r.get_u64()?;
        self.events = r.get_u64()?;
        self.printed.clear();
        self.printed_at.clear();
        self.dram_at_print.clear();
        for _ in 0..r.get_usize()? {
            self.printed.push(r.get_str()?.to_string());
            self.printed_at.push(Time::from_ps(r.get_u64()?));
            self.dram_at_print.push(r.get_u64()?);
        }
        self.watchdog.load(r)?;
        self.failure = if r.get_bool()? {
            let outcome = Outcome::from_snap_tag(r.get_u8()?)?;
            Some((outcome, DiagnosticDump::load_snap(r)?))
        } else {
            None
        };
        self.data_deliveries = r.get_u64()?;
        self.resps_seen = r.get_u64()?;
        self.blackholed_block = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.mut_count = r.get_u64()?;
        self.mut_done = r.get_bool()?;
        for rng in [&mut self.snoop_probe_rng, &mut self.upd_ack_rng] {
            if r.get_bool()? {
                match rng {
                    Some(s) => s.set_state(r.get_u64()?),
                    None => {
                        return Err(SnapError::Corrupt {
                            what: "snapshot carries a probe-loss fault stream the \
                                   config does not arm"
                                .to_string(),
                        })
                    }
                }
            } else if rng.is_some() {
                return Err(SnapError::Corrupt {
                    what: "config arms a probe-loss fault stream the snapshot lacks".to_string(),
                });
            }
        }
        self.snoop_probe_drops = r.get_u64()?;
        self.upd_ack_drops = r.get_u64()?;
        load_exact_u64s(r, &mut self.cpu_seq, "cpu_seq")?;
        load_exact_u64s(r, &mut self.mttop_seq, "mttop_seq")?;
        load_exact_usizes(r, &mut self.shoot_pending, "shoot_pending")?;
        load_exact_usizes(r, &mut self.reserved, "reserved")?;
        let n = r.get_usize()?;
        if n != self.handlers.len() {
            return Err(SnapError::Corrupt {
                what: format!(
                    "snapshot has {n} OS handlers, machine has {}",
                    self.handlers.len()
                ),
            });
        }
        for h in &mut self.handlers {
            *h = Handler::load(r)?;
        }
        r.end_section(end)?;

        let end = r.begin_section("queue")?;
        let mut queue = EventQueue::new();
        for _ in 0..r.get_usize()? {
            let t = Time::from_ps(r.get_u64()?);
            queue.push(t, Ev::load(r)?);
        }
        self.queue = queue;
        r.end_section(end)?;

        let end = r.begin_section("cpus")?;
        let n = r.get_usize()?;
        if n != self.cpus.len() {
            return Err(SnapError::Corrupt {
                what: format!("snapshot has {n} CPUs, machine has {}", self.cpus.len()),
            });
        }
        for c in &mut self.cpus {
            c.load(r)?;
        }
        r.end_section(end)?;

        let end = r.begin_section("mttops")?;
        let n = r.get_usize()?;
        if n != self.mttops.len() {
            return Err(SnapError::Corrupt {
                what: format!("snapshot has {n} MTTOPs, machine has {}", self.mttops.len()),
            });
        }
        for m in &mut self.mttops {
            m.load(r)?;
        }
        r.end_section(end)?;

        let end = r.begin_section("mifd")?;
        self.mifd.load(r)?;
        r.end_section(end)?;

        let end = r.begin_section("mem")?;
        self.mem.load(r)?;
        r.end_section(end)?;

        let end = r.begin_section("net")?;
        self.net.load(r)?;
        r.end_section(end)?;

        let end = r.begin_section("os")?;
        self.os.load(r)?;
        r.end_section(end)?;

        let end = r.begin_section("heap")?;
        self.heap.load(r)?;
        r.end_section(end)?;
        Ok(())
    }
}

impl Machine {
    /// Serializes the machine's full run-state to an in-memory snapshot
    /// image (header + every component, see DESIGN.md §8).
    ///
    /// Valid whenever the machine sits at an inter-event boundary: before
    /// [`Machine::run`], or after [`Machine::run_until`] returned `None`.
    /// The image is byte-identical regardless of `sim_threads` — host
    /// execution knobs are neither hashed nor serialized.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_header(config_hash(&self.cfg));
        // The protocol name rides right after the header (schema v3) so a
        // restore into a machine running a different coherence protocol can
        // report *why* the config hashes differ instead of a bare mismatch.
        w.put_str(self.cfg.protocol.as_str());
        self.save(&mut w);
        w.into_vec()
    }

    /// Writes [`Machine::checkpoint_bytes`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Io`] when the file cannot be written.
    pub fn checkpoint(&self, path: &std::path::Path) -> Result<(), SnapError> {
        ccsvm_snap::write_file(path, &self.checkpoint_bytes())
    }

    /// Rebuilds a machine from an in-memory snapshot image. `cfg` and
    /// `prog` must be the ones the checkpointed machine was built with —
    /// the header's config hash enforces the config part.
    ///
    /// The restored machine resumes with [`Machine::run`] (or
    /// `run_until`) and produces results bit-identical to the
    /// uninterrupted original, at any `sim_threads` setting.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapError`] — never a corrupted machine — when the
    /// image has the wrong magic, schema version, or config hash, or is
    /// truncated or internally inconsistent.
    pub fn restore_bytes(
        cfg: SystemConfig,
        prog: Program,
        bytes: &[u8],
    ) -> Result<Machine, SnapError> {
        let mut r = SnapReader::new(bytes);
        if let Err(e) = r.check_header(config_hash(&cfg)) {
            if matches!(e, SnapError::ConfigMismatch { .. }) {
                // The reader sits right after the header even on a hash
                // mismatch, so the protocol tag is readable: turn a
                // cross-protocol restore into its typed error.
                if let Ok(found) = r.get_str() {
                    if found != cfg.protocol.as_str() {
                        return Err(SnapError::ProtocolMismatch {
                            found: found.to_string(),
                            expected: cfg.protocol.as_str().to_string(),
                        });
                    }
                }
            }
            return Err(e);
        }
        let tag = r.get_str()?;
        if tag != cfg.protocol.as_str() {
            // Unreachable while the protocol participates in the config
            // hash; kept as a hard check so the tag never drifts silently.
            return Err(SnapError::ProtocolMismatch {
                found: tag.to_string(),
                expected: cfg.protocol.as_str().to_string(),
            });
        }
        let mut m = Machine::new(cfg, prog);
        m.load(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after machine state", r.remaining()),
            });
        }
        Ok(m)
    }

    /// Reads a snapshot file and [`Machine::restore_bytes`] from it.
    ///
    /// # Errors
    ///
    /// As [`Machine::restore_bytes`], plus [`SnapError::Io`] on read failure.
    pub fn restore(
        cfg: SystemConfig,
        prog: Program,
        path: &std::path::Path,
    ) -> Result<Machine, SnapError> {
        let bytes = ccsvm_snap::read_file(path)?;
        Machine::restore_bytes(cfg, prog, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite to `Time::plus`'s guard: the machine's scalar multiply
    /// helper must also refuse to silently warp simulated time. Debug
    /// builds panic; release builds saturate to `Time::MAX`.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "time multiply overflowed"))]
    fn time_multiply_overflow_is_guarded() {
        let t = times(Time::from_ps(u64::MAX / 2), 3);
        assert_eq!(t, Time::MAX);
    }

    #[test]
    fn time_multiply_in_range_is_exact() {
        assert_eq!(times(Time::from_ps(250), 4), Time::from_ps(1000));
        assert_eq!(times(Time::ZERO, u64::MAX), Time::ZERO);
    }

    #[test]
    fn config_hash_ignores_host_knobs_only() {
        let base = SystemConfig::tiny();
        let mut threads = base.clone();
        threads.sim_threads = 8;
        threads.host_profile = true;
        threads.sb_cache = false;
        threads.speculation.enabled = false;
        threads.speculation.max_epoch = 2;
        threads.speculation.max_scan = 7;
        threads.speculation.undo_sets = 1;
        assert_eq!(config_hash(&base), config_hash(&threads));

        let mut other = base.clone();
        other.n_cpus += 1;
        assert_ne!(config_hash(&base), config_hash(&other));
    }
}
