//! Snapshot corruption hardening: a machine image truncated at *every*
//! possible offset, or with bytes flipped throughout, must always surface a
//! typed [`SnapError`] or restore to a fully-validated machine — never
//! panic, never hand back a half-restored simulator. (The byte-flip sweep
//! allows `Ok` because payload bytes — cache data, register values — are
//! not individually checksummed; the header hash guards config identity,
//! and structural fields are bounds-checked. What is being proven is the
//! absence of panics and of unbounded allocations on hostile input.)

use ccsvm::{Machine, Outcome, SnapError, SystemConfig, Time};
use ccsvm_isa::Program;

const SRC: &str = "_CPU_ fn main() -> int { return 41 + 1; }";

fn compile() -> Program {
    ccsvm_xthreads::build(SRC).unwrap()
}

/// A mid-run image with live uncore state (queued events, cache contents,
/// in-flight coherence), which exercises every codec in the restore path.
fn mid_run_image(cfg: &SystemConfig) -> Vec<u8> {
    let baseline = Machine::new(cfg.clone(), compile()).run();
    assert_eq!(baseline.outcome, Outcome::Completed);
    let mut m = Machine::new(cfg.clone(), compile());
    let pause = Time::from_ps(baseline.time.as_ps() / 2);
    assert!(m.run_until(pause).is_none(), "run outlives the pause point");
    m.checkpoint_bytes()
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let cfg = SystemConfig::tiny();
    let bytes = mid_run_image(&cfg);
    // A valid image restores (sanity for the sweep below).
    Machine::restore_bytes(cfg.clone(), compile(), &bytes).expect("intact image restores");
    let prog = compile();
    for len in 0..bytes.len() {
        match Machine::restore_bytes(cfg.clone(), prog.clone(), &bytes[..len]) {
            Err(_) => {} // typed error: the only acceptable outcome
            Ok(_) => panic!(
                "truncation to {len}/{} bytes restored a machine",
                bytes.len()
            ),
        }
    }
}

#[test]
fn byte_flip_at_every_offset_never_panics_cold_boot() {
    let cfg = SystemConfig::tiny();
    let bytes = Machine::new(cfg.clone(), compile()).checkpoint_bytes();
    let prog = compile();
    let mut typed_errors = 0usize;
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xff;
        // Either a typed SnapError or a fully-restored machine; the test
        // harness turns any panic into a failure, which is the point.
        if Machine::restore_bytes(cfg.clone(), prog.clone(), &corrupt).is_err() {
            typed_errors += 1;
        }
    }
    // Most flips land in structural fields and must be caught.
    assert!(
        typed_errors > bytes.len() / 4,
        "only {typed_errors}/{} flips rejected — validation too loose?",
        bytes.len()
    );
}

#[test]
fn byte_flips_throughout_a_live_image_never_panic() {
    let cfg = SystemConfig::tiny();
    let bytes = mid_run_image(&cfg);
    let prog = compile();
    // Strided sweep with co-prime steps so every region of the image —
    // header, event queue, caches, directory, RNG, stats — gets hit under
    // several different masks.
    for (start, mask) in [(0usize, 0xffu8), (1, 0x01), (2, 0x80), (3, 0x55)] {
        for i in (start..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= mask;
            let _ = Machine::restore_bytes(cfg.clone(), prog.clone(), &corrupt);
        }
    }
}

/// Length-prefix sabotage: set every aligned u32/u64 window to huge values.
/// The reader must bounds-check lengths against the remaining bytes before
/// allocating — a hostile length must produce a typed error, not an OOM.
#[test]
fn hostile_length_fields_are_bounds_checked() {
    let cfg = SystemConfig::tiny();
    let bytes = mid_run_image(&cfg);
    let prog = compile();
    for i in (20..bytes.len().saturating_sub(8)).step_by(13) {
        let mut corrupt = bytes.clone();
        corrupt[i..i + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match Machine::restore_bytes(cfg.clone(), prog.clone(), &corrupt) {
            Err(
                SnapError::Truncated { .. }
                | SnapError::Corrupt { .. }
                | SnapError::BadMagic
                | SnapError::SchemaMismatch { .. }
                | SnapError::ConfigMismatch { .. },
            ) => {}
            Err(other) => panic!("unexpected error variant at {i}: {other:?}"),
            // A stomped window that happens to encode plausible small values
            // can still parse; acceptable as long as nothing panicked.
            Ok(_) => {}
        }
    }
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    let cfg = SystemConfig::tiny();
    let prog = compile();
    for img in [&[][..], &[0u8][..], &[0xff; 7][..], b"CCSVSNAP"] {
        assert!(
            Machine::restore_bytes(cfg.clone(), prog.clone(), img).is_err(),
            "{} bytes must not restore",
            img.len()
        );
    }
}

/// A live image from one coherence protocol restored into a machine
/// configured for another is a deliberate misuse, not corruption — it must
/// surface as the typed [`SnapError::ProtocolMismatch`] (naming both
/// protocols, so the caller can retry with `--protocol <found>`), never as a
/// decode panic deep in some component's `load`.
#[test]
fn cross_protocol_restore_is_typed_not_a_decode_panic() {
    use ccsvm::ProtocolKind;
    for (from, into) in [
        (ProtocolKind::Directory, ProtocolKind::MesiSnoop),
        (ProtocolKind::MesiSnoop, ProtocolKind::Dragon),
        (ProtocolKind::Dragon, ProtocolKind::Directory),
    ] {
        let mut cfg = SystemConfig::tiny();
        cfg.protocol = from;
        let image = mid_run_image(&cfg);
        let mut other = cfg.clone();
        other.protocol = into;
        match Machine::restore_bytes(other, compile(), &image) {
            Err(SnapError::ProtocolMismatch { found, expected }) => {
                assert_eq!(found, from.as_str());
                assert_eq!(expected, into.as_str());
            }
            Err(e) => panic!("expected ProtocolMismatch, got {e:?}"),
            Ok(_) => panic!("cross-protocol restore must fail"),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry-state sections (schema v4): images captured under an active fault
// plan — probe-loss streams armed, solicitation rounds and retry epochs in
// flight — must survive the same hostile-input sweeps as clean images, and
// an intact mid-retry image must restore and finish bit-identically.
// ---------------------------------------------------------------------------

/// A sharing workload that keeps solicitation rounds in flight.
const SHARED_SRC: &str = "global results: int;
     fn worker(arg: int) -> int {
         atomic_add(&results, arg);
         return 0;
     }
     _CPU_ fn main() -> int {
         results = 0;
         let t1 = spawn_cthread(worker, 5);
         if (t1 < 0) { return -1; }
         while (results != 5) { }
         return results;
     }";

/// A config with every protocol-appropriate loss stream armed, so the image
/// carries the v4 fault-RNG state and live `RetryRound` counters.
fn faulted_cfg(protocol: ccsvm::ProtocolKind) -> SystemConfig {
    use ccsvm::ProtocolKind;
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = protocol;
    cfg.fault.seed = 11;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    if protocol != ProtocolKind::Directory {
        cfg.fault.snoop_probe.drop_rate = 0.2;
    }
    if protocol == ProtocolKind::Dragon {
        cfg.fault.upd_ack.drop_rate = 0.2;
    }
    cfg
}

fn faulted_image(cfg: &SystemConfig) -> (Vec<u8>, ccsvm::RunReport) {
    let prog = ccsvm_xthreads::build(SHARED_SRC).unwrap();
    let baseline = Machine::new(cfg.clone(), prog.clone()).run();
    assert_eq!(baseline.outcome, Outcome::Completed);
    let mut m = Machine::new(cfg.clone(), prog);
    let pause = Time::from_ps(baseline.time.as_ps() / 2);
    assert!(m.run_until(pause).is_none(), "run outlives the pause point");
    (m.checkpoint_bytes(), baseline)
}

#[test]
fn mid_retry_image_restores_bit_identically_for_every_protocol() {
    for protocol in ccsvm::ProtocolKind::ALL {
        let cfg = faulted_cfg(protocol);
        let (bytes, baseline) = faulted_image(&cfg);
        let prog = ccsvm_xthreads::build(SHARED_SRC).unwrap();
        let mut restored = Machine::restore_bytes(cfg, prog, &bytes)
            .unwrap_or_else(|e| panic!("{protocol:?}: intact image failed: {e:?}"));
        assert_eq!(
            restored.run(),
            baseline,
            "{protocol:?}: restoring mid-retry state diverged"
        );
    }
}

#[test]
fn mid_retry_truncation_at_every_offset_is_a_typed_error() {
    for protocol in ccsvm::ProtocolKind::ALL {
        let cfg = faulted_cfg(protocol);
        let (bytes, _) = faulted_image(&cfg);
        let prog = ccsvm_xthreads::build(SHARED_SRC).unwrap();
        for len in 0..bytes.len() {
            if Machine::restore_bytes(cfg.clone(), prog.clone(), &bytes[..len]).is_ok() {
                panic!(
                    "{protocol:?}: truncation to {len}/{} bytes restored a machine",
                    bytes.len()
                );
            }
        }
    }
}

#[test]
fn mid_retry_hostile_length_fields_are_bounds_checked() {
    for protocol in ccsvm::ProtocolKind::ALL {
        let cfg = faulted_cfg(protocol);
        let (bytes, _) = faulted_image(&cfg);
        let prog = ccsvm_xthreads::build(SHARED_SRC).unwrap();
        for i in (20..bytes.len().saturating_sub(8)).step_by(13) {
            let mut corrupt = bytes.clone();
            corrupt[i..i + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            match Machine::restore_bytes(cfg.clone(), prog.clone(), &corrupt) {
                Err(
                    SnapError::Truncated { .. }
                    | SnapError::Corrupt { .. }
                    | SnapError::BadMagic
                    | SnapError::SchemaMismatch { .. }
                    | SnapError::ConfigMismatch { .. },
                ) => {}
                Err(other) => panic!("{protocol:?}: unexpected variant at {i}: {other:?}"),
                Ok(_) => {} // plausible small values may still parse; no panic is the claim
            }
        }
    }
}

/// The v4 sections carry the armed loss streams; an image whose config no
/// longer arms them (or vice versa) is a config identity violation and must
/// be rejected before any component decode runs.
#[test]
fn fault_stream_presence_mismatch_is_a_typed_error() {
    let cfg = faulted_cfg(ccsvm::ProtocolKind::MesiSnoop);
    let (bytes, _) = faulted_image(&cfg);
    let mut disarmed = cfg.clone();
    disarmed.fault.snoop_probe.drop_rate = 0.0;
    let prog = ccsvm_xthreads::build(SHARED_SRC).unwrap();
    assert!(
        Machine::restore_bytes(disarmed, prog, &bytes).is_err(),
        "image with an armed probe-loss stream restored into a disarmed config"
    );
}
