//! Checkpoint/restore differential suite: the headline invariant is that a
//! run checkpointed at any cycle T and restored — at any `sim_threads`, on
//! any later session — finishes with a `RunReport` bit-for-bit identical to
//! the uninterrupted run, including under active fault plans and for runs
//! that are going to abort. Mismatched snapshots (wrong config, wrong schema,
//! truncated or corrupt bytes) must surface as typed errors, never as a
//! silently-wrong simulation.

use ccsvm::{Machine, Outcome, ProtocolKind, RunReport, SnapError, SystemConfig, Time};
use ccsvm_isa::Program;

fn compile(src: &str) -> Program {
    ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"))
}

/// A small CPU+MTTOP workload with real NoC/L2/DRAM traffic (the same shape
/// the fault suite uses), so checkpoints land mid-offload with in-flight
/// coherence transactions, queued handler work, and pending MTTOP chunks.
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

fn faulty_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dram.single_bit_rate = 0.2;
    cfg.fault.tlb.transient_rate = 0.02;
    cfg
}

/// A run wedged by a dropped directory grant: the watchdog aborts it.
fn deadlock_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.drop_data_delivery = Some(1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    cfg
}

/// The uninterrupted reference run.
fn reference(cfg: &SystemConfig, src: &str) -> RunReport {
    Machine::new(cfg.clone(), compile(src)).run()
}

/// Pause a fresh machine at simulated time `at`, checkpoint it, restore the
/// image into a machine running with `restore_threads`, and finish.
fn checkpoint_resume(cfg: &SystemConfig, src: &str, at: Time, restore_threads: usize) -> RunReport {
    let mut m = Machine::new(cfg.clone(), compile(src));
    assert!(
        m.run_until(at).is_none(),
        "run finished before the checkpoint cycle {at} — pick an earlier one"
    );
    let bytes = m.checkpoint_bytes();
    let mut rcfg = cfg.clone();
    rcfg.sim_threads = restore_threads;
    let mut restored =
        Machine::restore_bytes(rcfg, compile(src), &bytes).expect("restore must succeed");
    restored.run()
}

fn fraction_of(t: Time, num: u64, den: u64) -> Time {
    Time::from_ps(t.as_ps() / den * num)
}

#[test]
fn roundtrip_is_bit_identical_fault_free() {
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(32);
    let uninterrupted = reference(&cfg, &src);
    assert_eq!(uninterrupted.outcome, Outcome::Completed);
    // {early, mid-offload} checkpoint cycles x {serial, zoned} restores.
    for (num, den) in [(1, 16), (1, 2)] {
        for threads in [1, 4] {
            let at = fraction_of(uninterrupted.time, num, den);
            let resumed = checkpoint_resume(&cfg, &src, at, threads);
            assert_eq!(
                resumed, uninterrupted,
                "checkpoint at {at} restored with sim_threads={threads} diverged"
            );
        }
    }
}

#[test]
fn roundtrip_is_bit_identical_under_every_protocol() {
    // Mid-offload checkpoints under the snooping protocols serialize live
    // bus transactions (`AwaitSnoop` phase, collected `SnoopResp` state) and
    // must restore them exactly.
    let src = vecadd_src(32);
    for kind in ProtocolKind::ALL {
        let mut cfg = SystemConfig::tiny();
        cfg.protocol = kind;
        let uninterrupted = reference(&cfg, &src);
        assert_eq!(uninterrupted.outcome, Outcome::Completed, "{kind}");
        for (num, den) in [(1, 16), (1, 2)] {
            for threads in [1, 4] {
                let at = fraction_of(uninterrupted.time, num, den);
                let resumed = checkpoint_resume(&cfg, &src, at, threads);
                assert_eq!(
                    resumed, uninterrupted,
                    "{kind}: checkpoint at {at} restored with sim_threads={threads} diverged"
                );
            }
        }
    }
}

#[test]
fn cross_protocol_restore_is_a_typed_error() {
    let src = vecadd_src(32);
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = ProtocolKind::MesiSnoop;
    let m = Machine::new(cfg.clone(), compile(&src));
    let bytes = m.checkpoint_bytes();
    let mut other = cfg.clone();
    other.protocol = ProtocolKind::Dragon;
    match Machine::restore_bytes(other, compile(&src), &bytes) {
        Err(SnapError::ProtocolMismatch { found, expected }) => {
            assert_eq!(found, "mesi-snoop");
            assert_eq!(expected, "dragon");
        }
        Err(e) => panic!("expected ProtocolMismatch, got {e:?}"),
        Ok(_) => panic!("expected ProtocolMismatch, got a restored machine"),
    }
    // Same protocol, same config: restores fine.
    assert!(Machine::restore_bytes(cfg, compile(&src), &bytes).is_ok());
}

#[test]
fn roundtrip_is_bit_identical_under_active_fault_plan() {
    // The restored machine must pick up the fault schedule exactly where the
    // checkpoint left it: same RNG streams, same pending injections.
    let cfg = faulty_cfg(7);
    let src = vecadd_src(32);
    let uninterrupted = reference(&cfg, &src);
    assert_eq!(uninterrupted.outcome, Outcome::Completed);
    assert!(
        uninterrupted.stats.get("noc.retransmissions") > 0.0,
        "faults really fired in the reference run"
    );
    for (num, den) in [(1, 16), (1, 2)] {
        for threads in [1, 4] {
            let at = fraction_of(uninterrupted.time, num, den);
            let resumed = checkpoint_resume(&cfg, &src, at, threads);
            assert_eq!(
                resumed, uninterrupted,
                "faulty checkpoint at {at} restored with sim_threads={threads} diverged"
            );
        }
    }
}

#[test]
fn snapshot_bytes_are_identical_across_sim_threads() {
    // Pausing serial and zoned runs at the same cycle must produce the same
    // machine state — and because host-side telemetry is excluded from the
    // image, the *snapshot bytes* must match too. This is what makes images
    // portable across `--sim-threads` settings.
    let src = vecadd_src(32);
    let serial_ref = reference(&SystemConfig::tiny(), &src);
    let at = fraction_of(serial_ref.time, 1, 2);
    let mut images = Vec::new();
    for threads in [1, 2, 4] {
        let mut cfg = SystemConfig::tiny();
        cfg.sim_threads = threads;
        let mut m = Machine::new(cfg, compile(&src));
        assert!(m.run_until(at).is_none());
        images.push(m.checkpoint_bytes());
    }
    assert_eq!(images[0], images[1], "sim_threads=1 vs 2 images differ");
    assert_eq!(images[0], images[2], "sim_threads=1 vs 4 images differ");
}

#[test]
fn aborting_run_roundtrips_including_the_diagnostic_dump() {
    // A run that is *going to* deadlock, checkpointed while wedged, must
    // restore and abort with the identical outcome, dump, and cycle. The
    // watchdog's progress tracker is part of the image.
    let cfg = deadlock_cfg();
    let src = "_CPU_ fn main() -> int { return 41 + 1; }";
    let uninterrupted = reference(&cfg, src);
    assert_eq!(uninterrupted.outcome, Outcome::Deadlock);
    for (num, den) in [(1, 16), (1, 2)] {
        let at = fraction_of(uninterrupted.time, num, den);
        for threads in [1, 4] {
            let resumed = checkpoint_resume(&cfg, src, at, threads);
            assert_eq!(
                resumed, uninterrupted,
                "wedged checkpoint at {at} (sim_threads={threads}) diverged"
            );
        }
    }
}

#[test]
fn cold_boot_checkpoint_roundtrips() {
    // Checkpointing before the first event is legal: the image records a
    // not-yet-started machine and the restore boots it from scratch.
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(16);
    let uninterrupted = reference(&cfg, &src);
    let m = Machine::new(cfg.clone(), compile(&src));
    let bytes = m.checkpoint_bytes();
    let mut restored = Machine::restore_bytes(cfg, compile(&src), &bytes).expect("cold restore");
    assert_eq!(restored.run(), uninterrupted);
}

#[test]
fn chained_checkpoints_roundtrip() {
    // Checkpoint, restore, run a bit further, checkpoint *again*, restore:
    // images taken from restored machines are as good as first-generation
    // ones.
    let cfg = faulty_cfg(7);
    let src = vecadd_src(32);
    let uninterrupted = reference(&cfg, &src);
    let t1 = fraction_of(uninterrupted.time, 1, 4);
    let t2 = fraction_of(uninterrupted.time, 3, 4);

    let mut gen0 = Machine::new(cfg.clone(), compile(&src));
    assert!(gen0.run_until(t1).is_none());
    let image1 = gen0.checkpoint_bytes();

    let mut gen1 =
        Machine::restore_bytes(cfg.clone(), compile(&src), &image1).expect("first restore");
    assert!(gen1.run_until(t2).is_none());
    let image2 = gen1.checkpoint_bytes();

    let mut gen2 =
        Machine::restore_bytes(cfg.clone(), compile(&src), &image2).expect("second restore");
    assert_eq!(gen2.run(), uninterrupted);
}

#[test]
fn file_round_trip_via_checkpoint_and_restore() {
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(16);
    let uninterrupted = reference(&cfg, &src);
    let at = fraction_of(uninterrupted.time, 1, 2);
    let mut m = Machine::new(cfg.clone(), compile(&src));
    assert!(m.run_until(at).is_none());
    let path = std::env::temp_dir().join(format!("ccsvm-snap-test-{}.ccsnap", std::process::id()));
    m.checkpoint(&path).expect("checkpoint to file");
    let mut restored = Machine::restore(cfg, compile(&src), &path).expect("restore from file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(restored.run(), uninterrupted);
}

#[test]
fn mismatched_config_is_a_typed_error() {
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(16);
    let mut m = Machine::new(cfg.clone(), compile(&src));
    let limit = fraction_of(reference(&cfg, &src).time, 1, 2);
    assert!(m.run_until(limit).is_none());
    let bytes = m.checkpoint_bytes();
    // A machine with one more CPU is a different machine: restoring the
    // image into it must fail up front, not corrupt the topology.
    let mut other = cfg.clone();
    other.n_cpus += 1;
    match Machine::restore_bytes(other, compile(&src), &bytes) {
        Err(SnapError::ConfigMismatch { found, expected }) => {
            assert_ne!(found, expected);
        }
        Err(other) => panic!("expected ConfigMismatch, got {other:?}"),
        Ok(_) => panic!("expected ConfigMismatch, restore succeeded"),
    }
    // But host-only knobs (sim_threads, host_profile) are *not* part of the
    // machine's identity — the same image restores fine.
    let mut host_knobs = cfg.clone();
    host_knobs.sim_threads = 4;
    host_knobs.host_profile = true;
    assert!(Machine::restore_bytes(host_knobs, compile(&src), &bytes).is_ok());
}

#[test]
fn mismatched_schema_bad_magic_and_truncation_are_typed_errors() {
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(16);
    let mut m = Machine::new(cfg.clone(), compile(&src));
    let limit = fraction_of(reference(&cfg, &src).time, 1, 2);
    assert!(m.run_until(limit).is_none());
    let bytes = m.checkpoint_bytes();

    // Header layout: magic [0..8], schema u32 [8..12], config hash [12..20].
    let mut wrong_schema = bytes.clone();
    wrong_schema[8..12].copy_from_slice(&(ccsvm::SNAP_SCHEMA_VERSION + 1).to_le_bytes());
    match Machine::restore_bytes(cfg.clone(), compile(&src), &wrong_schema) {
        Err(SnapError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, ccsvm::SNAP_SCHEMA_VERSION + 1);
            assert_eq!(expected, ccsvm::SNAP_SCHEMA_VERSION);
        }
        Err(other) => panic!("expected SchemaMismatch, got {other:?}"),
        Ok(_) => panic!("expected SchemaMismatch, restore succeeded"),
    }

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xff;
    assert!(matches!(
        Machine::restore_bytes(cfg.clone(), compile(&src), &wrong_magic),
        Err(SnapError::BadMagic)
    ));

    // Truncated inside the header.
    assert!(matches!(
        Machine::restore_bytes(cfg.clone(), compile(&src), &bytes[..10]),
        Err(SnapError::Truncated { .. })
    ));
    // Truncated mid-body: still a typed error, never a panic or a partially
    // restored machine.
    assert!(matches!(
        Machine::restore_bytes(cfg.clone(), compile(&src), &bytes[..bytes.len() / 2]),
        Err(SnapError::Truncated { .. } | SnapError::Corrupt { .. })
    ));
    // Trailing garbage after a valid image is rejected too.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(
        Machine::restore_bytes(cfg, compile(&src), &padded),
        Err(SnapError::Corrupt { .. })
    ));
}

// Property test: a checkpoint at a *random* cycle — not just the hand-picked
// early/mid points — round-trips bit-for-bit. Needs `proptest`; see the
// `slow-tests` note in Cargo.toml.
#[cfg(feature = "slow-tests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_checkpoint_cycle_roundtrips(
            percent in 1u64..100,
            threads in prop_oneof![Just(1usize), Just(4usize)],
        ) {
            let cfg = faulty_cfg(7);
            let src = vecadd_src(16);
            let uninterrupted = reference(&cfg, &src);
            let at = fraction_of(uninterrupted.time, percent, 100);
            let resumed = checkpoint_resume(&cfg, &src, at, threads);
            prop_assert_eq!(resumed, uninterrupted);
        }
    }
}
