//! Coherence litmus tests (the classic shapes from Sorin/Hill/Wood and
//! rust-atomics-and-locks ch. 7), run under **all three** coherence
//! protocols. The machine models in-order blocking cores over a
//! write-propagating hierarchy, so every protocol must present sequential
//! consistency: each litmus pins the outcomes SC forbids and the values it
//! requires, plus a protocol-shape assertion where the traffic signature
//! distinguishes invalidation from update.

use ccsvm::{Machine, Outcome, ProtocolKind, RunReport, SystemConfig};

/// Store buffering (SB): with `x = y = 0`,
///
/// ```text
/// CPU 0          CPU 1
/// x = 1;         y = 1;
/// r0 = y;        r1 = x;
/// ```
///
/// SC forbids `r0 == 0 && r1 == 0` — some store must be ordered first, and
/// the other thread's later load must see it. A store buffer without
/// coherence-ordered drains would allow it.
const STORE_BUFFER: &str = "global x: int;
     global y: int;
     global r1: int;
     global done: int;
     fn worker(arg: int) -> int {
         y = 1;
         r1 = x;
         atomic_add(&done, 1);
         return 0;
     }
     _CPU_ fn main() -> int {
         x = 0; y = 0; r1 = 0; done = 0;
         let t = spawn_cthread(worker, 0);
         if (t < 0) { return -1; }
         x = 1;
         let r0 = y;
         while (done != 1) { }
         if (r0 == 0) { if (r1 == 0) { return 100; } }
         return 0;
     }";

/// Message passing (MP): the consumer spins on `flag`, then reads `data`.
/// SC (and plain coherence) requires it to observe the producer's `data`
/// write once it has seen `flag`. Under Dragon the flag flip reaches the
/// spinning reader as an in-place `BusUpd` patch; under MESI it arrives as
/// an invalidation and a re-fetch.
const MESSAGE_PASSING: &str = "global data: int;
     global flag: int;
     global got: int;
     global done: int;
     fn worker(arg: int) -> int {
         while (flag == 0) { }
         got = data;
         atomic_add(&done, 1);
         return 0;
     }
     _CPU_ fn main() -> int {
         data = 0; flag = 0; got = 0; done = 0;
         let t = spawn_cthread(worker, 0);
         if (t < 0) { return -1; }
         data = 42;
         flag = 1;
         while (done != 1) { }
         return got;
     }";

/// MESI ping-pong: two CPUs hammer one cache line with atomic increments,
/// bouncing its ownership back and forth. Every increment must be counted
/// exactly once under every protocol (atomics serialize through the
/// invalidating `BusRdX`/`GetM` path even under Dragon).
const PING_PONG: &str = "global counter: int;
     global done: int;
     fn worker(arg: int) -> int {
         for (let i = 0; i < arg; i = i + 1) { atomic_add(&counter, 1); }
         atomic_add(&done, 1);
         return 0;
     }
     _CPU_ fn main() -> int {
         counter = 0; done = 0;
         let t = spawn_cthread(worker, 100);
         if (t < 0) { return -1; }
         for (let i = 0; i < 100; i = i + 1) { atomic_add(&counter, 1); }
         while (done != 1) { }
         return counter;
     }";

fn run_under(kind: ProtocolKind, src: &str) -> RunReport {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = kind;
    // The sanitizer rides along: a litmus pass with a silently broken
    // protocol would be vacuous, so every run also sweeps the protocol's
    // own invariant mask.
    cfg.sanitizer.enabled = true;
    let r = Machine::new(cfg, prog).run();
    assert_eq!(
        r.outcome,
        Outcome::Completed,
        "{kind}: litmus run aborted (diag: {:?})",
        r.diagnostic
    );
    r
}

fn stat_sum(r: &RunReport, suffix: &str) -> f64 {
    r.stats
        .iter()
        .filter(|(k, _)| k.ends_with(suffix))
        .map(|(_, v)| v)
        .sum()
}

#[test]
fn store_buffer_forbidden_outcome_never_appears() {
    for kind in ProtocolKind::ALL {
        let r = run_under(kind, STORE_BUFFER);
        assert_eq!(
            r.exit_code, 0,
            "{kind}: SC-forbidden SB outcome r0 == r1 == 0 observed"
        );
    }
}

#[test]
fn message_passing_reader_sees_data_behind_flag() {
    for kind in ProtocolKind::ALL {
        let r = run_under(kind, MESSAGE_PASSING);
        assert_eq!(r.exit_code, 42, "{kind}: stale data read behind the flag");
    }
}

#[test]
fn ping_pong_counts_every_increment() {
    for kind in ProtocolKind::ALL {
        let r = run_under(kind, PING_PONG);
        assert_eq!(r.exit_code, 200, "{kind}: lost or duplicated increment");
    }
}

/// The traffic *shape* separates the protocol families: the invalidating
/// protocols resolve ping-pong writes by invalidating the other copy, so
/// L1 invalidations must show up; they never send update probes. (Dragon
/// also invalidates here — atomics take its `BusRdX` path — but its plain
/// shared stores in MP go out as updates instead, which MESI never emits.)
#[test]
fn traffic_shape_distinguishes_invalidate_from_update() {
    let dir = run_under(ProtocolKind::Directory, PING_PONG);
    let mesi = run_under(ProtocolKind::MesiSnoop, PING_PONG);
    assert!(
        stat_sum(&dir, ".invalidations") > 0.0,
        "directory ping-pong must invalidate"
    );
    assert!(
        stat_sum(&mesi, ".invalidations") > 0.0,
        "MESI ping-pong must invalidate"
    );
}

// ---------------------------------------------------------------------------
// Litmus under loss (DESIGN §14): SC-forbidden outcomes must stay
// unreachable when the fabric is dropping and retransmitting — a resent
// solicitation round that double-applied an update or leaked a stale value
// would surface here as a forbidden exit code.
// ---------------------------------------------------------------------------

/// The standard campaign fault plan for litmus runs: link-level NoC loss for
/// everyone, seeded probe loss for the snooping protocols, update-ack loss
/// for Dragon — all recovered through the solicitation-round timeout.
fn run_under_faults(kind: ProtocolKind, src: &str, seed: u64) -> RunReport {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = kind;
    cfg.sanitizer.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dir.timeout = Some(ccsvm::Time::from_us(5));
    if kind != ProtocolKind::Directory {
        cfg.fault.snoop_probe.drop_rate = 0.05;
    }
    if kind == ProtocolKind::Dragon {
        cfg.fault.upd_ack.drop_rate = 0.05;
    }
    let r = Machine::new(cfg, prog).run();
    assert_eq!(
        r.outcome,
        Outcome::Completed,
        "{kind} seed {seed}: faulted litmus run aborted (diag: {:?})",
        r.diagnostic
    );
    r
}

#[test]
fn store_buffer_stays_sc_under_loss() {
    for kind in ProtocolKind::ALL {
        for seed in [3, 11] {
            let r = run_under_faults(kind, STORE_BUFFER, seed);
            assert_eq!(
                r.exit_code, 0,
                "{kind} seed {seed}: SC-forbidden SB outcome under loss"
            );
        }
    }
}

#[test]
fn message_passing_stays_sc_under_loss() {
    for kind in ProtocolKind::ALL {
        for seed in [3, 11] {
            let r = run_under_faults(kind, MESSAGE_PASSING, seed);
            assert_eq!(
                r.exit_code, 42,
                "{kind} seed {seed}: stale data behind the flag under loss"
            );
        }
    }
}

#[test]
fn ping_pong_counts_every_increment_under_loss() {
    for kind in ProtocolKind::ALL {
        for seed in [3, 11] {
            let r = run_under_faults(kind, PING_PONG, seed);
            assert_eq!(
                r.exit_code, 200,
                "{kind} seed {seed}: lost or duplicated increment under loss"
            );
        }
    }
}
