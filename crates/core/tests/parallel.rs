//! Differential determinism tests for the fork-join executor (DESIGN §7):
//! every run — happy path, fault-injected, and aborting — must produce a
//! `RunReport` (outcome, stats, diagnostics, printed output, event count)
//! identical to the serial reference loop at every `sim_threads` value.

use ccsvm::{Machine, Outcome, RunReport, SystemConfig, Time};

fn run_at(mut cfg: SystemConfig, src: &str, sim_threads: usize) -> RunReport {
    cfg.sim_threads = sim_threads;
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    Machine::new(cfg, prog).run()
}

/// Runs `src` serially and at `sim_threads ∈ {2, 4}`, asserting the full
/// reports match, and returns the serial report.
fn differential(cfg: &SystemConfig, src: &str, label: &str) -> RunReport {
    let serial = run_at(cfg.clone(), src, 1);
    for sim_threads in [2, 4] {
        let par = run_at(cfg.clone(), src, sim_threads);
        assert_eq!(
            serial, par,
            "{label}: sim_threads={sim_threads} diverged from serial"
        );
    }
    serial
}

/// The same CPU+MTTOP workload as `faults.rs` (real NoC/L2/DRAM traffic and
/// MTTOP offload, so same-timestamp MTTOP batch zones actually form).
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

/// The fault matrix of `core/tests/faults.rs`: NoC drops + correctable DRAM
/// ECC flips + transient TLB-walk failures, seeded.
fn faulty_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dram.single_bit_rate = 0.2;
    cfg.fault.tlb.transient_rate = 0.02;
    cfg
}

#[test]
fn fault_free_offload_is_identical_across_sim_threads() {
    let r = differential(&SystemConfig::tiny(), &vecadd_src(64), "vecadd_n64");
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, (0..64).map(|i| i * 3 + i + 7).sum::<u64>());
}

#[test]
fn paper_default_offload_is_identical_across_sim_threads() {
    // Full-size machine (10 MTTOP cores): the configuration where zones are
    // widest and the executor actually forks.
    let src = ccsvm_workloads::matmul::xthreads_source(
        &ccsvm_workloads::matmul::MatmulParams::new(16, 42),
    );
    let r = differential(&SystemConfig::paper_default(), &src, "matmul_n16");
    assert_eq!(r.outcome, Outcome::Completed);
}

#[test]
fn zones_actually_form_under_offload() {
    // Guard against the fork-join path being vacuous: the full-size machine
    // running a real offload must execute at least one multi-batch zone.
    let src = ccsvm_workloads::matmul::xthreads_source(
        &ccsvm_workloads::matmul::MatmulParams::new(16, 42),
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.sim_threads = 4;
    let prog = ccsvm_xthreads::build(&src).unwrap_or_else(|e| panic!("compile: {e}"));
    let mut m = Machine::new(cfg, prog);
    let r = m.run();
    assert_eq!(r.outcome, Outcome::Completed);
    let ph = m.host_phases();
    assert!(
        ph.zones > 0,
        "no fork-join zones formed — executor never forked"
    );
    assert!(
        ph.zone_batches >= 2 * ph.zones,
        "zones must hold ≥2 batches"
    );
}

#[test]
fn fault_injection_matrix_is_identical_across_sim_threads() {
    for seed in [3, 7, 11] {
        let r = differential(
            &faulty_cfg(seed),
            &vecadd_src(32),
            &format!("faulty seed {seed}"),
        );
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert!(
            r.stats.get("noc.retransmissions") > 0.0,
            "seed {seed}: NoC faults must actually fire in the compared runs"
        );
    }
}

#[test]
fn deadlock_abort_is_identical_across_sim_threads() {
    // A dropped data grant deadlocks the machine; outcome, watchdog timing
    // and the DiagnosticDump must match the serial reference exactly.
    let mut cfg = SystemConfig::tiny();
    cfg.fault.drop_data_delivery = Some(1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    let r = differential(
        &cfg,
        "_CPU_ fn main() -> int { return 41 + 1; }",
        "deadlock",
    );
    assert_eq!(r.outcome, Outcome::Deadlock);
    assert!(r.diagnostic.is_some());
}

#[test]
fn ecc_poison_abort_is_identical_across_sim_threads() {
    // Poisoned blocks suppress zone formation; the abort path must still be
    // bit-identical, diagnostics included.
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dram.double_bit_rate = 1.0;
    let r = differential(&cfg, "_CPU_ fn main() -> int { return 41 + 1; }", "poison");
    assert_eq!(r.outcome, Outcome::Poisoned);
    assert!(!r.diagnostic.expect("dump").poisoned_blocks.is_empty());
}
