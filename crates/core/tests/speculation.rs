//! Differential tests for the speculative epoch executor (DESIGN §12):
//! cross-timestamp MTTOP batches execute optimistically with undo-log
//! rollback, and every observable — `RunReport`, stats, diagnostics,
//! printed output — must stay bit-identical to the serial reference loop
//! with speculation on or off, at every `sim_threads` value, under fault
//! plans, and with the coherence sanitizer observing.

use ccsvm::{Machine, Outcome, RunReport, SystemConfig, Time};

fn build(src: &str) -> ccsvm_isa::Program {
    ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"))
}

fn run_at(mut cfg: SystemConfig, src: &str, sim_threads: usize, speculation: bool) -> RunReport {
    cfg.sim_threads = sim_threads;
    cfg.speculation.enabled = speculation;
    Machine::new(cfg, build(src)).run()
}

/// Runs `src` serially, then at `sim_threads ∈ {2, 4}` with speculation on
/// and off, asserting every report matches the serial reference. Returns
/// the serial report.
fn differential(cfg: &SystemConfig, src: &str, label: &str) -> RunReport {
    let serial = run_at(cfg.clone(), src, 1, true);
    for sim_threads in [2, 4] {
        for speculation in [true, false] {
            let par = run_at(cfg.clone(), src, sim_threads, speculation);
            assert_eq!(
                serial, par,
                "{label}: sim_threads={sim_threads} speculation={speculation} \
                 diverged from serial"
            );
        }
    }
    serial
}

/// Offload workload with real cross-core memory traffic (same shape as
/// `parallel.rs`), sized so MTTOP batches from different timestamps coexist
/// in the queue and epochs actually form.
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

fn matmul_n16() -> String {
    ccsvm_workloads::matmul::xthreads_source(&ccsvm_workloads::matmul::MatmulParams::new(16, 42))
}

#[test]
fn speculation_on_off_is_identical_across_sim_threads() {
    let r = differential(&SystemConfig::tiny(), &vecadd_src(64), "vecadd_n64");
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, (0..64).map(|i| i * 3 + i + 7).sum::<u64>());
}

#[test]
fn paper_default_offload_is_identical_and_epochs_commit() {
    // Full-size machine (10 MTTOP cores), the configuration where epochs
    // are widest. Also guards against the speculative path being vacuous:
    // the run must form epochs and commit speculated members.
    let src = matmul_n16();
    let r = differential(&SystemConfig::paper_default(), &src, "matmul_n16");
    assert_eq!(r.outcome, Outcome::Completed);

    let mut cfg = SystemConfig::paper_default();
    cfg.sim_threads = 4;
    let mut m = Machine::new(cfg, build(&src));
    assert_eq!(m.run().outcome, Outcome::Completed);
    let s = m.spec_stats();
    assert!(s.epochs > 0, "no epochs formed: {s:?}");
    assert!(
        s.committed > s.epochs,
        "epochs never committed a speculated member (only heads): {s:?}"
    );
}

#[test]
fn conflict_on_last_epoch_member_rolls_back_and_matches_serial() {
    // `max_epoch = 2` makes every epoch a head plus exactly one speculated
    // member, so any conflict-driven rollback is necessarily on the *last*
    // member of its epoch — the boundary where commit-order bookkeeping is
    // easiest to get wrong. The run must both exercise that path and stay
    // bit-identical to serial.
    let src = matmul_n16();
    let mut cfg = SystemConfig::paper_default();
    cfg.speculation.max_epoch = 2;
    let serial = run_at(cfg.clone(), &src, 1, true);
    cfg.sim_threads = 4;
    let mut m = Machine::new(cfg, build(&src));
    let par = m.run();
    assert_eq!(serial, par, "max_epoch=2 diverged from serial");
    let s = m.spec_stats();
    assert!(s.epochs > 0, "no epochs formed: {s:?}");
    assert!(
        s.rolled_back > 0,
        "no last-member rollback exercised — workload or conflict rules \
         changed shape: {s:?}"
    );
}

#[test]
fn undo_overflow_falls_back_to_snapshot_restore() {
    // A one-set undo budget overflows on essentially every speculative
    // member that touches the L1, forcing the journal's full-snapshot
    // fallback. Rollback correctness must not depend on which mechanism
    // restored the cache.
    let src = matmul_n16();
    let mut cfg = SystemConfig::paper_default();
    cfg.speculation.undo_sets = 1;
    let serial = run_at(cfg.clone(), &src, 1, true);
    cfg.sim_threads = 4;
    let mut m = Machine::new(cfg, build(&src));
    let par = m.run();
    assert_eq!(serial, par, "undo_sets=1 diverged from serial");
    let s = m.spec_stats();
    assert!(s.rolled_back > 0, "no rollbacks exercised: {s:?}");
    assert!(
        s.overflows > 0,
        "undo journal never overflowed with a 1-set budget: {s:?}"
    );
}

#[test]
fn rollback_across_checkpoint_boundary_is_identical() {
    // Pause mid-offload, checkpoint, restore, and finish under the
    // speculative executor: the stitched run must equal the uninterrupted
    // serial run exactly, even though epochs (and their rollbacks) straddle
    // state that crossed a serialization boundary.
    let src = matmul_n16();
    let cfg = SystemConfig::paper_default();
    let uninterrupted = run_at(cfg.clone(), &src, 1, true);
    assert_eq!(uninterrupted.outcome, Outcome::Completed);

    let half = Time::from_ps(uninterrupted.time.as_ps() / 2);
    let mut cfg_pause = cfg.clone();
    cfg_pause.sim_threads = 4;
    let mut m = Machine::new(cfg_pause, build(&src));
    assert!(
        m.run_until(half).is_none(),
        "run finished before the checkpoint point"
    );
    let image = m.checkpoint_bytes();

    for (sim_threads, speculation) in [(4, true), (1, true), (4, false)] {
        let mut cfg_resume = cfg.clone();
        cfg_resume.sim_threads = sim_threads;
        cfg_resume.speculation.enabled = speculation;
        let mut fork = Machine::restore_bytes(cfg_resume, build(&src), &image)
            .unwrap_or_else(|e| panic!("restore: {e}"));
        let resumed = fork.run();
        assert_eq!(
            uninterrupted, resumed,
            "resumed run (sim_threads={sim_threads}, speculation={speculation}) \
             diverged from the uninterrupted serial run"
        );
    }
}

#[test]
fn fault_plan_and_sanitizer_matrix_is_identical() {
    // The `faults.rs` fault plan (NoC drops + correctable DRAM ECC flips +
    // transient TLB-walk failures), with and without the coherence
    // sanitizer observing: speculation must neither change results nor
    // trip an invariant, whichever executor runs.
    for seed in [3, 7] {
        for sanitize in [false, true] {
            let mut cfg = SystemConfig::tiny();
            cfg.fault.seed = seed;
            cfg.fault.noc.drop_rate = 0.02;
            cfg.fault.dram.single_bit_rate = 0.2;
            cfg.fault.tlb.transient_rate = 0.02;
            cfg.sanitizer.enabled = sanitize;
            let r = differential(
                &cfg,
                &vecadd_src(32),
                &format!("faulty seed {seed} sanitize {sanitize}"),
            );
            assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
            assert!(
                r.stats.get("noc.retransmissions") > 0.0,
                "seed {seed}: NoC faults must actually fire in the compared runs"
            );
        }
    }
}

#[test]
fn poison_abort_under_speculation_is_identical() {
    // ECC poison rolls back every uncommitted member and the head runs
    // serially from then on; the abort must stay bit-identical,
    // diagnostics included.
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dram.double_bit_rate = 0.02;
    let r = differential(&cfg, &vecadd_src(32), "poison offload");
    assert_eq!(r.outcome, Outcome::Poisoned);
    assert!(!r.diagnostic.expect("dump").poisoned_blocks.is_empty());
}
