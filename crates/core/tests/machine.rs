//! Full-system integration tests: compiled XC programs booted on the
//! simulated CCSVM chip, exercising launches, coherence, synchronization,
//! demand paging, MTTOP fault forwarding, and shootdowns.

use ccsvm::{Machine, RunReport, SystemConfig};

fn run(cfg: SystemConfig, src: &str) -> (Machine, RunReport) {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let mut m = Machine::new(cfg, prog);
    let r = m.run();
    (m, r)
}

#[test]
fn trivial_main_runs_and_takes_time() {
    let (_, r) = run(
        SystemConfig::tiny(),
        "_CPU_ fn main() -> int { return 41 + 1; }",
    );
    assert_eq!(r.exit_code, 42);
    assert!(r.time.as_ns() > 0.0);
    assert!(r.instructions > 0);
    // Demand paging happened for the stack.
    assert!(r.stats.get("os.page_faults") >= 1.0);
}

#[test]
fn print_order_is_program_order() {
    let (_, r) = run(
        SystemConfig::tiny(),
        "_CPU_ fn main() -> int {
            for (let i = 0; i < 5; i = i + 1) { print_int(i * i); }
            return 0;
        }",
    );
    assert_eq!(r.printed, ["0", "1", "4", "9", "16"]);
}

#[test]
fn vecadd_on_mttop_with_wait_signal() {
    // Figure 4's program on the timing machine: a real MIFD launch, MTTOP
    // page faults forwarded to the CPU, coherent results.
    let n = 32u64; // 4 warps on the tiny machine's 2 cores
    let src = format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    );
    let (_, r) = run(SystemConfig::tiny(), &src);
    let expect: u64 = (0..n).map(|i| i * 3 + i + 7).sum();
    assert_eq!(r.exit_code, expect);
    // MTTOP cores really executed threads.
    assert!(r.stats.sum_prefix("mttop.") > 0.0);
    assert_eq!(r.stats.get("mifd.launches"), 1.0);
    // (MTTOP page faults are exercised by tests/full_stack.rs's deep
    // recursion test; with pre-mapped stacks this small kernel may not
    // fault at all.)
}

#[test]
fn launch_error_register_when_task_too_big() {
    // tiny: 2 cores x 4 warps x 8 lanes = 64 contexts; ask for 128 threads.
    let (_, r) = run(
        SystemConfig::tiny(),
        "_MTTOP_ fn k(tid: int, a: int*) { }
         _CPU_ fn main() -> int {
             let buf: int* = malloc(8);
             return xt_create_mthread(k, buf as int, 0, 127);
         }",
    );
    assert_eq!(r.exit_code, 1, "MIFD error register propagates");
    assert_eq!(r.stats.get("mifd.rejected"), 1.0);
}

#[test]
fn cpu_mttop_barrier_round_trips() {
    // Two phases separated by a global CPU+MTTOP barrier: phase 2 must see
    // phase 1's data (coherence) and the barrier must not deadlock.
    let (_, r) = run(
        SystemConfig::tiny(),
        "struct Args { data: int*; bar: int*; sense: int*; done: int*; n: int; }
         _MTTOP_ fn k(tid: int, a: Args*) {
             a->data[tid] = tid + 1;
             xt_barrier_mttop(a->bar, a->sense, tid);
             // Threads now block in the second barrier until the CPU has
             // sampled the mid-state and releases them.
             xt_barrier_mttop(a->bar, a->sense, tid);
             a->data[tid] = a->data[tid] * 10;
             xt_msignal(a->done, tid);
         }
         _CPU_ fn main() -> int {
             let n = 16;
             let a: Args* = malloc(sizeof(Args));
             a->data = malloc(n * 8);
             a->bar = malloc(n * 8);
             a->sense = malloc(8);
             a->done = malloc(n * 8);
             a->n = n;
             for (let i = 0; i < n; i = i + 1) {
                 a->bar[i] = 0; a->data[i] = 0; a->done[i] = 0;
             }
             *(a->sense) = 0;
             xt_create_mthread(k, a as int, 0, n - 1);
             xt_barrier_cpu(a->bar, a->sense, 0, n - 1);
             // Every thread is parked in barrier 2: data is quiescent.
             let mid = 0;
             for (let i = 0; i < n; i = i + 1) { mid = mid + a->data[i]; }
             xt_barrier_cpu(a->bar, a->sense, 0, n - 1);
             xt_wait(a->done, 0, n - 1);
             let fin = 0;
             for (let i = 0; i < n; i = i + 1) { fin = fin + a->data[i]; }
             return mid * 100000 + fin;
         }",
    );
    let mid: u64 = (1..=16).sum(); // 136
    let fin = mid * 10; // 1360
    assert_eq!(r.exit_code, mid * 100000 + fin);
}

#[test]
fn mttop_malloc_builds_linked_lists() {
    // The §5.3.2 mechanism: MTTOP threads dynamically allocate via a CPU
    // malloc server, then build pointer-linked data.
    let (_, r) = run(
        SystemConfig::tiny(),
        "struct Args { req: int*; resp: int*; heads: int*; done: int*; }
         struct Node { val: int; next: Node*; }
         _MTTOP_ fn k(tid: int, a: Args*) {
             let head: Node* = 0 as Node*;
             for (let i = 1; i <= 3; i = i + 1) {
                 let n: Node* = xt_mttop_malloc(a->req, a->resp, tid, sizeof(Node)) as Node*;
                 n->val = tid * 10 + i;
                 n->next = head;
                 head = n;
             }
             a->heads[tid] = head as int;
             xt_msignal(a->done, tid);
         }
         _CPU_ fn main() -> int {
             let n = 8;
             let a: Args* = malloc(sizeof(Args));
             a->req = malloc(n * 8);
             a->resp = malloc(n * 8);
             a->heads = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {
                 a->req[i] = 0; a->resp[i] = 0; a->done[i] = 0;
             }
             xt_create_mthread(k, a as int, 0, n - 1);
             xt_malloc_server(a->req, a->resp, n, a->done, 0, n - 1);
             // Walk every list on the CPU: pointer-based structures are
             // shared across core types (the paper's §5.3 claim).
             let total = 0;
             for (let t = 0; t < n; t = t + 1) {
                 let p: Node* = a->heads[t] as Node*;
                 while (p != 0 as Node*) {
                     total = total + p->val;
                     p = p->next;
                 }
             }
             return total;
         }",
    );
    let expect: u64 = (0..8u64)
        .map(|t| (1..=3).map(|i| t * 10 + i).sum::<u64>())
        .sum();
    assert_eq!(r.exit_code, expect);
}

#[test]
fn spawn_cthreads_pthreads_style() {
    let (_, r) = run(
        SystemConfig::tiny(),
        "global results: int;
         fn worker(arg: int) -> int {
             atomic_add(&results, arg);
             return 0;
         }
         _CPU_ fn main() -> int {
             results = 0;
             let t1 = spawn_cthread(worker, 5);
             if (t1 < 0) { return -1; }
             // Wait for the worker (spin on the shared counter).
             while (results != 5) { }
             return results;
         }",
    );
    assert_eq!(r.exit_code, 5);
}

#[test]
fn munmap_triggers_shootdown() {
    let (_, r) = run(
        SystemConfig::tiny(),
        "_CPU_ fn main() -> int {
             let p: int* = malloc(4096);
             p[0] = 7;           // faults the page in
             munmap(p as int);   // unmap + full shootdown
             let q: int* = malloc(4096);
             q[0] = 9;
             return q[0];
         }",
    );
    assert_eq!(r.exit_code, 9);
    // Every MTTOP TLB was flushed; other CPU got an IPI invalidation.
    assert!(r.stats.sum_prefix("mttop.0.tlb.flushes") >= 1.0);
    assert!(r.stats.sum_prefix("mttop.1.tlb.flushes") >= 1.0);
}

#[test]
fn timing_matches_functional_semantics() {
    // The timing machine and the functional interpreter must agree on
    // architectural results for a numeric kernel.
    let src = "struct Args { out: int*; n: int; }
         _MTTOP_ fn k(tid: int, a: Args*) {
             let acc = 0;
             for (let i = 0; i <= tid; i = i + 1) { acc = acc + i * i; }
             a->out[tid] = acc;
         }
         _CPU_ fn main() -> int {
             let n = 16;
             let a: Args* = malloc(sizeof(Args));
             a->out = malloc(n * 8);
             a->n = n;
             for (let i = 0; i < n; i = i + 1) { a->out[i] = -1; }
             xt_create_mthread(k, a as int, 0, n - 1);
             // Wait by polling the last element of each warp.
             let done = 0;
             while (done == 0) {
                 done = 1;
                 for (let i = 0; i < n; i = i + 1) {
                     if (a->out[i] == -1) { done = 0; }
                 }
             }
             let s = 0;
             for (let i = 0; i < n; i = i + 1) { s = s + a->out[i]; }
             return s;
         }";
    let (_, r) = run(SystemConfig::tiny(), src);

    // Functional oracle.
    let p = ccsvm_xthreads::build(src).unwrap();
    let mut mem = ccsvm_isa::FlatMem::new();
    let mut os = ccsvm_isa::FuncOs::new();
    let mut t = ccsvm_isa::Interp::new(p.entry("__start"), 0);
    t.run(&p, &mut mem, &mut os, 100_000_000).unwrap();
    assert_eq!(r.exit_code, t.regs[1]);
}

#[test]
fn guest_alloc_init_and_read_roundtrip() {
    let prog = ccsvm_xthreads::build("_CPU_ fn main() -> int { return 0; }").unwrap();
    let mut m = Machine::new(SystemConfig::tiny(), prog);
    let data: Vec<u8> = (0..10000u32).map(|i| (i % 251) as u8).collect();
    let va = m.guest_alloc_init(&data);
    let mut back = vec![0u8; data.len()];
    m.guest_read(va, &mut back);
    assert_eq!(back, data);
    let words = m.guest_read_words(va, 4);
    assert_eq!(words.len(), 4);
    m.run();
}

#[test]
fn paper_default_machine_boots() {
    let (_, r) = run(
        SystemConfig::paper_default(),
        "_MTTOP_ fn k(tid: int, out: int*) { out[tid] = tid; }
         _CPU_ fn main() -> int {
             let n = 1280; // every thread context on the full chip
             let out: int* = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) { out[i] = -1; }
             if (xt_create_mthread(k, out as int, 0, n - 1) != 0) { return -1; }
             let done = 0;
             while (done == 0) {
                 done = 1;
                 for (let i = 0; i < n; i = i + 1) {
                     if (out[i] == -1) { done = 0; }
                 }
             }
             return out[1279] + out[640] + out[0];
         }",
    );
    assert_eq!(r.exit_code, 1279 + 640);
    assert_eq!(r.stats.get("mifd.chunks"), 160.0); // 1280 / 8 lanes
}

#[test]
fn sc_litmus_message_passing() {
    // Message passing: data then flag; consumer sees flag => sees data.
    // Repeated across producer on MTTOP, consumer on CPU.
    let (_, r) = run(
        SystemConfig::tiny(),
        "struct Args { data: int*; flag: int*; }
         _MTTOP_ fn producer(tid: int, a: Args*) {
             a->data[0] = 777;
             a->flag[0] = 1;    // SC: no reordering of these stores
         }
         _CPU_ fn main() -> int {
             let a: Args* = malloc(sizeof(Args));
             a->data = malloc(64);
             a->flag = malloc(64);
             a->data[0] = 0;
             a->flag[0] = 0;
             xt_create_mthread(producer, a as int, 0, 0);
             while (a->flag[0] == 0) { }
             return a->data[0];  // must be 777 under SC
         }",
    );
    assert_eq!(r.exit_code, 777);
}
