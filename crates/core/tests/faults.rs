//! Fault injection and watchdog integration tests: seeded fault runs must
//! replay bit-for-bit, lost messages must end in a graceful typed abort
//! (never a hang), and the directory's NACK/retry path must recover from
//! recoverable losses.

use ccsvm::{Machine, Outcome, ProtocolKind, RunReport, SystemConfig, Time};

fn run(cfg: SystemConfig, src: &str) -> RunReport {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    Machine::new(cfg, prog).run()
}

/// A small CPU+MTTOP workload with real NoC/L2/DRAM traffic.
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

/// A two-CPU sharing workload that generates invalidation/fetch traffic.
const PINGPONG: &str = "global results: int;
     fn worker(arg: int) -> int {
         atomic_add(&results, arg);
         return 0;
     }
     _CPU_ fn main() -> int {
         results = 0;
         let t1 = spawn_cthread(worker, 5);
         if (t1 < 0) { return -1; }
         while (results != 5) { }
         return results;
     }";

fn faulty_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dram.single_bit_rate = 0.2;
    cfg.fault.tlb.transient_rate = 0.02;
    cfg
}

#[test]
fn same_seed_fault_runs_replay_bit_identical() {
    let a = run(faulty_cfg(7), &vecadd_src(32));
    let b = run(faulty_cfg(7), &vecadd_src(32));
    assert_eq!(a.outcome, Outcome::Completed);
    // Faults really fired and are part of the compared state.
    assert!(a.stats.get("noc.retransmissions") > 0.0, "NoC faults fired");
    assert!(
        a.stats.get("mem.dram.ecc_corrected") > 0.0,
        "ECC singles fired"
    );
    assert_eq!(a, b, "same seed must replay bit-for-bit");
}

#[test]
fn different_seeds_diverge() {
    let a = run(faulty_cfg(7), &vecadd_src(32));
    let b = run(faulty_cfg(8), &vecadd_src(32));
    assert_eq!(a.outcome, Outcome::Completed);
    assert_eq!(b.outcome, Outcome::Completed);
    assert_eq!(
        a.exit_code, b.exit_code,
        "results stay correct under faults"
    );
    assert_ne!(a, b, "different seeds must draw different fault schedules");
}

#[test]
fn dropped_completion_aborts_as_deadlock_with_dump() {
    let mut cfg = SystemConfig::tiny();
    // Lose the very first directory data grant: its L1 waits forever.
    cfg.fault.drop_data_delivery = Some(1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    let r = run(cfg, "_CPU_ fn main() -> int { return 41 + 1; }");
    assert_eq!(r.outcome, Outcome::Deadlock);
    let d = r.diagnostic.expect("deadlock carries a diagnostic dump");
    assert!(!d.outstanding.is_empty(), "dump names the stuck port: {d}");
    // Bounded abort: a handful of 100 us watchdog periods, not max_sim_time.
    assert!(
        r.time.as_ms() < 10.0,
        "aborted at {} — watchdog too slow",
        r.time
    );
}

#[test]
fn watchdog_dump_records_the_last_progress_cycle() {
    // Same wedge as above. The dump's `at` must be the simulated time where
    // forward progress actually stopped — the interesting cycle for
    // debugging — not the (quanta x period) later tick that noticed.
    let mut cfg = SystemConfig::tiny();
    cfg.fault.drop_data_delivery = Some(1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    let r = run(cfg, "_CPU_ fn main() -> int { return 41 + 1; }");
    assert_eq!(r.outcome, Outcome::Deadlock);
    let d = r.diagnostic.expect("deadlock carries a diagnostic dump");
    assert!(
        d.at < r.time,
        "dump.at {} must be the wedge cycle, not the abort tick {}",
        d.at,
        r.time
    );
    // The watchdog saw >= `quanta` stale periods between the wedge and the
    // abort, so the two times differ by at least that much.
    assert!(
        r.time.as_ps() - d.at.as_ps() >= 3 * Time::from_us(100).as_ps(),
        "wedge at {} vs abort at {}: gap shorter than the stale window",
        d.at,
        r.time
    );
}

#[test]
fn double_bit_ecc_error_poisons_the_run() {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dram.double_bit_rate = 1.0; // every DRAM fill is uncorrectable
    let r = run(cfg, "_CPU_ fn main() -> int { return 41 + 1; }");
    assert_eq!(r.outcome, Outcome::Poisoned);
    let d = r
        .diagnostic
        .expect("poison abort carries a diagnostic dump");
    assert!(
        !d.poisoned_blocks.is_empty(),
        "dump lists the poisoned block"
    );
}

#[test]
fn dropped_response_recovers_via_directory_nack() {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    // Lose one L1 response in transit; the directory must NACK and
    // re-solicit rather than wait forever.
    cfg.fault.drop_one_resp = Some(1);
    let r = run(cfg, PINGPONG);
    assert_eq!(r.outcome, Outcome::Completed, "diag: {:?}", r.diagnostic);
    assert_eq!(r.exit_code, 5);
    let timeouts: f64 = (0..2)
        .map(|i| r.stats.get(&format!("mem.l2.{i}.dir_timeouts")))
        .sum();
    assert!(timeouts >= 1.0, "the dropped response forced a NACK round");
}

#[test]
fn blackholed_responder_exhausts_retry_budget() {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    cfg.fault.dir.retry_budget = 3;
    // Drop a response and every later response for the same block: no NACK
    // round can ever succeed, so the budget must run out — gracefully.
    cfg.fault.blackhole_resp = Some(1);
    let r = run(cfg, PINGPONG);
    assert_eq!(r.outcome, Outcome::RetryBudgetExhausted);
    let d = r
        .diagnostic
        .expect("budget abort carries a diagnostic dump");
    assert!(d.reason.contains("retry budget"), "reason: {}", d.reason);
    assert!(r.time.as_ms() < 10.0, "bounded abort, got {}", r.time);
}

#[test]
fn fault_free_runs_are_unaffected_by_the_watchdog() {
    // Default config: watchdog armed, all injectors off.
    let base = run(SystemConfig::tiny(), &vecadd_src(32));
    assert_eq!(base.outcome, Outcome::Completed);
    assert!(base.diagnostic.is_none());
    // Disabling the watchdog changes nothing observable.
    let mut cfg = SystemConfig::tiny();
    cfg.fault.watchdog.enabled = false;
    let off = run(cfg, &vecadd_src(32));
    assert_eq!(base, off, "watchdog ticks must not perturb the simulation");
    // No fault counters appear in a fault-free report.
    assert!(!base.stats.contains("noc.retransmissions"));
    assert!(!base.stats.contains("mem.dram.ecc_corrected"));
}

// ---------------------------------------------------------------------------
// Watchdog / fault-plan edge cases (DESIGN §9 triage prerequisites).
// ---------------------------------------------------------------------------

/// A run that is *going to* wedge, checkpointed exactly at the cycle forward
/// progress stops (the dump's `at` — a checkpoint boundary by construction),
/// must restore and abort bit-identically to the uninterrupted run.
#[test]
fn watchdog_abort_at_checkpoint_boundary_restores_identically() {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.drop_data_delivery = Some(1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    let src = "_CPU_ fn main() -> int { return 41 + 1; }";
    let prog = ccsvm_xthreads::build(src).unwrap();

    let baseline = Machine::new(cfg.clone(), prog.clone()).run();
    assert_eq!(baseline.outcome, Outcome::Deadlock);
    let wedge_at = baseline.diagnostic.as_ref().unwrap().at;

    // Checkpoint exactly at the wedge cycle: the machine is healthy there
    // (the watchdog only notices `quanta` periods later)...
    let mut m = Machine::new(cfg.clone(), prog.clone());
    assert!(
        m.run_until(wedge_at).is_none(),
        "no abort yet at the wedge cycle itself"
    );
    let snap = m.checkpoint_bytes();

    // ...and the restored run must re-derive the identical abort.
    let mut r = Machine::restore_bytes(cfg, prog, &snap).unwrap();
    assert_eq!(
        r.run(),
        baseline,
        "restored wedge must abort bit-identically"
    );
}

/// Sweep the drop-Nth-delivery injector past the end of the run: the first
/// N with no Nth occurrence must complete bit-identical to fault-free
/// (an armed-but-unfired injector is invisible), and N-1 — the run's
/// *final* data delivery — must still abort gracefully with a dump.
#[test]
fn fault_on_final_event_still_aborts_gracefully() {
    let src = "_CPU_ fn main() -> int { return 41 + 1; }";
    let clean = run(SystemConfig::tiny(), src);
    assert_eq!(clean.outcome, Outcome::Completed);

    let wedged_cfg = |n: u64| {
        let mut cfg = SystemConfig::tiny();
        cfg.fault.drop_data_delivery = Some(n);
        cfg.fault.watchdog.period = Time::from_us(100);
        cfg.fault.watchdog.quanta = 4;
        cfg
    };
    // Find the first N whose Nth data delivery never happens.
    let mut past_end = None;
    for n in 1..=512u64 {
        if run(wedged_cfg(n), src).outcome == Outcome::Completed {
            past_end = Some(n);
            break;
        }
    }
    let past_end = past_end.expect("a trivial run has < 512 data deliveries");
    assert!(past_end > 1, "the run performs at least one data delivery");

    // Armed but unfired: bit-identical to the injector-free run.
    let unfired = run(wedged_cfg(past_end), src);
    assert_eq!(unfired, clean, "unfired injector must not perturb the run");

    // Dropping the very last delivery of the run still aborts in bounded
    // time with a dump naming the stuck port.
    let last = run(wedged_cfg(past_end - 1), src);
    assert_eq!(last.outcome, Outcome::Deadlock);
    let d = last
        .diagnostic
        .expect("final-event fault still carries a dump");
    assert!(!d.outstanding.is_empty(), "dump names the stuck port: {d}");
    assert!(last.time.as_ms() < 10.0, "bounded abort, got {}", last.time);
}

/// A zero retry budget: the very first directory timeout exhausts it. Must
/// be a typed abort with a diagnostic dump, never a panic or a hang.
#[test]
fn zero_retry_budget_aborts_with_dump_on_first_timeout() {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    cfg.fault.dir.retry_budget = 0;
    cfg.fault.blackhole_resp = Some(1);
    let r = run(cfg, PINGPONG);
    assert_eq!(r.outcome, Outcome::RetryBudgetExhausted);
    let d = r.diagnostic.expect("zero-budget abort carries a dump");
    assert!(d.reason.contains("retry budget"), "reason: {}", d.reason);
    assert!(
        !d.dir_active.is_empty() || !d.outstanding.is_empty(),
        "dump points at the stuck transaction: {d}"
    );
    assert!(
        r.time.as_ms() < 1.0,
        "first timeout aborts promptly, got {}",
        r.time
    );
}

// ---------------------------------------------------------------------------
// Cross-protocol fault matrix (DESIGN §14): all three protocols survive the
// same seeded fault plans, deterministically, at every sim_threads value.
// ---------------------------------------------------------------------------

/// `faulty_cfg` plus the protocol-specific loss domains: seeded snoop-probe
/// loss for both snooping protocols, update-ack loss for Dragon, and the
/// solicitation-round timeout armed so lost probes are resent, not hung on.
fn matrix_cfg(protocol: ProtocolKind, seed: u64) -> SystemConfig {
    let mut cfg = faulty_cfg(seed);
    cfg.protocol = protocol;
    if protocol != ProtocolKind::Directory {
        cfg.fault.dir.timeout = Some(Time::from_us(5));
        cfg.fault.snoop_probe.drop_rate = 0.05;
    }
    if protocol == ProtocolKind::Dragon {
        cfg.fault.upd_ack.drop_rate = 0.05;
    }
    cfg
}

#[test]
fn fault_matrix_is_deterministic_for_every_protocol_and_thread_count() {
    for protocol in ProtocolKind::ALL {
        let mut reference: Option<RunReport> = None;
        for threads in [1usize, 2, 4] {
            let mut cfg = matrix_cfg(protocol, 7);
            cfg.sim_threads = threads;
            let a = run(cfg.clone(), &vecadd_src(32));
            let b = run(cfg, &vecadd_src(32));
            assert_eq!(
                a.outcome,
                Outcome::Completed,
                "{} sim_threads={threads}: diag {:?}",
                protocol.as_str(),
                a.diagnostic
            );
            assert_eq!(
                a,
                b,
                "{} sim_threads={threads}: same seed must replay bit-for-bit",
                protocol.as_str()
            );
            match &reference {
                None => reference = Some(a),
                Some(r) => assert_eq!(
                    &a,
                    r,
                    "{} sim_threads={threads} diverged from serial",
                    protocol.as_str()
                ),
            }
        }
    }
}

/// Crank the loss rates on a sharing-heavy workload with a small retry
/// budget: the run may complete, wedge, or exhaust the budget — but the
/// outcome must always be typed, diagnosed, and bounded. Never a panic.
#[test]
fn heavy_loss_matrix_always_ends_in_a_typed_outcome() {
    for protocol in ProtocolKind::ALL {
        let mut cfg = matrix_cfg(protocol, 13);
        cfg.fault.noc.drop_rate = 0.05;
        cfg.fault.dir.timeout = Some(Time::from_us(5));
        cfg.fault.dir.retry_budget = 4;
        if protocol != ProtocolKind::Directory {
            cfg.fault.snoop_probe.drop_rate = 0.3;
        }
        let r = run(cfg, PINGPONG);
        assert!(
            matches!(
                r.outcome,
                Outcome::Completed | Outcome::Deadlock | Outcome::RetryBudgetExhausted
            ),
            "{}: outcome {:?} not a typed loss outcome",
            protocol.as_str(),
            r.outcome
        );
        if r.outcome != Outcome::Completed {
            assert!(
                r.diagnostic.is_some(),
                "{}: abnormal outcome must carry a dump",
                protocol.as_str()
            );
        }
        assert!(
            r.time.as_ms() <= 200.0,
            "{}: unbounded run, got {}",
            protocol.as_str(),
            r.time
        );
    }
}

#[test]
fn dropped_snoop_probes_recover_via_solicitation_timeout() {
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = ProtocolKind::MesiSnoop;
    cfg.fault.seed = 11;
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    cfg.fault.snoop_probe.drop_rate = 0.2;
    let r = run(cfg, PINGPONG);
    assert_eq!(r.outcome, Outcome::Completed, "diag: {:?}", r.diagnostic);
    assert_eq!(r.exit_code, 5);
    assert!(
        r.stats.get("fault.snoop_probe_drops") >= 1.0,
        "seeded probe drops fired"
    );
    let timeouts: f64 = (0..2)
        .map(|i| r.stats.get(&format!("mem.l2.{i}.dir_timeouts")))
        .sum();
    assert!(timeouts >= 1.0, "a lost probe forced a solicitation resend");
}

#[test]
fn dropped_update_acks_recover_via_solicitation_timeout() {
    // Dragon atomics serialize via BusRdX; only plain stores to a *shared*
    // block broadcast BusUpd. A spinning reader keeps the flag line shared,
    // so every store in the worker's loop is a write-update round.
    const UPDATE_STORM: &str = "global flag: int;
         fn worker(arg: int) -> int {
             for (let i = 1; i <= arg; i = i + 1) { flag = i; }
             return 0;
         }
         _CPU_ fn main() -> int {
             flag = 0;
             let t1 = spawn_cthread(worker, 40);
             if (t1 < 0) { return -1; }
             while (flag != 40) { }
             return flag;
         }";
    let mut cfg = SystemConfig::tiny();
    cfg.protocol = ProtocolKind::Dragon;
    cfg.fault.seed = 11;
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    cfg.fault.upd_ack.drop_rate = 0.3;
    let r = run(cfg, UPDATE_STORM);
    assert_eq!(r.outcome, Outcome::Completed, "diag: {:?}", r.diagnostic);
    assert_eq!(r.exit_code, 40);
    assert!(
        r.stats.get("fault.upd_ack_drops") >= 1.0,
        "seeded update-ack drops fired"
    );
    let timeouts: f64 = (0..2)
        .map(|i| r.stats.get(&format!("mem.l2.{i}.dir_timeouts")))
        .sum();
    assert!(timeouts >= 1.0, "a lost UpdDone forced a BusUpd resend");
}

/// The probe/ack loss domains have no carrier events under the directory
/// protocol: arming them draws nothing and perturbs nothing observable.
#[test]
fn probe_loss_domains_are_inert_under_the_directory_protocol() {
    let base = run(SystemConfig::tiny(), PINGPONG);
    assert_eq!(base.outcome, Outcome::Completed);
    let mut cfg = SystemConfig::tiny();
    cfg.fault.snoop_probe.drop_rate = 0.5;
    cfg.fault.upd_ack.drop_rate = 0.5;
    let armed = run(cfg, PINGPONG);
    assert_eq!(armed.outcome, base.outcome);
    assert_eq!(armed.exit_code, base.exit_code);
    assert_eq!(armed.time, base.time, "armed-but-unfired streams are inert");
    assert_eq!(armed.stats.get("fault.snoop_probe_drops"), 0.0);
    assert_eq!(armed.stats.get("fault.upd_ack_drops"), 0.0);
}

/// A checkpoint taken mid-run under an active cross-protocol fault plan —
/// with solicitation rounds and retry state potentially in flight — must
/// restore and finish bit-identically, for every protocol.
#[test]
fn faulty_checkpoint_restores_bit_identically_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let cfg = matrix_cfg(protocol, 7);
        let prog = ccsvm_xthreads::build(&vecadd_src(32)).unwrap();
        let baseline = Machine::new(cfg.clone(), prog.clone()).run();
        assert_eq!(baseline.outcome, Outcome::Completed);

        let at = Time::from_ps(baseline.time.as_ps() / 2);
        let mut m = Machine::new(cfg.clone(), prog.clone());
        assert!(m.run_until(at).is_none(), "no abort expected mid-run");
        let snap = m.checkpoint_bytes();
        let mut r = Machine::restore_bytes(cfg, prog, &snap).unwrap();
        assert_eq!(
            r.run(),
            baseline,
            "{}: restored faulty run diverged",
            protocol.as_str()
        );
    }
}
