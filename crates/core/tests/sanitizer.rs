//! Coherence-sanitizer suite (DESIGN §9): the sanitizer must be a pure
//! observer — enabling it changes no simulated behavior and every
//! `RunReport` stays bit-identical — yet each seeded protocol mutation must
//! be caught with the correct invariant ID at a definite cycle, and the
//! triage pipeline must bisect a failure to its first failing cycle and
//! emit a replay bundle that deterministically reproduces it.

use ccsvm::{
    replay_bundle, run_with_triage, InvariantId, Machine, Mutation, MutationKind, Outcome,
    ProtocolKind, ReplayBundle, RunReport, SystemConfig, Time, Violation,
};

fn run(cfg: SystemConfig, src: &str) -> RunReport {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    Machine::new(cfg, prog).run()
}

/// A small CPU+MTTOP workload with real NoC/L2/DRAM traffic.
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

/// A two-CPU sharing workload: the S→M upgrade and invalidation traffic the
/// grant/fill mutations need.
const PINGPONG: &str = "global results: int;
     fn worker(arg: int) -> int {
         atomic_add(&results, arg);
         return 0;
     }
     _CPU_ fn main() -> int {
         results = 0;
         let t1 = spawn_cthread(worker, 5);
         if (t1 < 0) { return -1; }
         while (results != 5) { }
         return results;
     }";

/// A shootdown workload where the *remote* CPU has cached the doomed
/// translation: the worker reads the page (filling CPU 1's TLB), then main
/// munmaps it, so the shootdown IPI must invalidate a live remote entry.
const SHOOTDOWN: &str = "global sync: int;
     global addr: int;
     fn worker(arg: int) -> int {
         let p: int* = addr as int*;
         let x = p[0];
         atomic_add(&sync, 1 + x);
         return 0;
     }
     _CPU_ fn main() -> int {
         let p: int* = malloc(4096);
         p[0] = 0;
         addr = p as int;
         sync = 0;
         let t1 = spawn_cthread(worker, 1);
         if (t1 < 0) { return -1; }
         while (sync != 1) { }
         munmap(p as int);
         return 7;
     }";

fn faulty_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dram.single_bit_rate = 0.2;
    cfg.fault.tlb.transient_rate = 0.02;
    cfg
}

/// Tiny machine with the sanitizer on and one seeded mutation armed.
fn mutated_cfg(kind: MutationKind, nth: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.sanitizer.enabled = true;
    cfg.sanitizer.mutate = Some(Mutation { kind, nth });
    cfg
}

/// Like [`mutated_cfg`] but running a non-default coherence protocol.
fn mutated_cfg_proto(kind: MutationKind, nth: u64, protocol: ProtocolKind) -> SystemConfig {
    let mut cfg = mutated_cfg(kind, nth);
    cfg.protocol = protocol;
    cfg
}

/// The recorded violation behind an `InvariantViolation` abort.
fn violation(r: &RunReport) -> Violation {
    assert_eq!(
        r.outcome,
        Outcome::InvariantViolation,
        "expected a sanitizer abort, got {:?} (diag: {:?})",
        r.outcome,
        r.diagnostic
    );
    let d = r
        .diagnostic
        .as_ref()
        .expect("abnormal outcome carries a dump");
    assert_eq!(d.at, r.time, "dump is stamped at the abort cycle");
    d.violation
        .clone()
        .expect("sanitizer abort records its violation")
}

// ---------------------------------------------------------------------------
// Observer purity: sanitizer on/off is invisible in results.
// ---------------------------------------------------------------------------

#[test]
fn sanitizer_on_is_bit_identical_including_under_faults() {
    let off = run(faulty_cfg(7), &vecadd_src(24));
    let mut cfg = faulty_cfg(7);
    cfg.sanitizer.enabled = true;
    let on = run(cfg, &vecadd_src(24));
    assert_eq!(off.outcome, Outcome::Completed);
    assert_eq!(off, on, "enabling the sanitizer must not change the report");
}

#[test]
fn sanitizer_on_pingpong_bit_identical() {
    let off = run(SystemConfig::tiny(), PINGPONG);
    let mut cfg = SystemConfig::tiny();
    cfg.sanitizer.enabled = true;
    let on = run(cfg, PINGPONG);
    assert_eq!(off.exit_code, 5);
    assert_eq!(off, on);
}

/// A checkpoint captured with the sanitizer *off* restores into a
/// sanitizer-*on* machine (the config hash normalizes observer settings)
/// and the resumed run is still bit-identical to the uninterrupted one.
#[test]
fn off_checkpoint_restores_into_sanitizer_on_machine() {
    let src = vecadd_src(24);
    let prog = ccsvm_xthreads::build(&src).unwrap();
    let baseline = Machine::new(faulty_cfg(7), prog.clone()).run();
    assert_eq!(baseline.outcome, Outcome::Completed);

    let mut m = Machine::new(faulty_cfg(7), prog.clone());
    let pause = Time::from_ps(baseline.time.as_ps() / 2);
    assert!(m.run_until(pause).is_none(), "workload outlives the pause");
    let snap = m.checkpoint_bytes();

    let mut on_cfg = faulty_cfg(7);
    on_cfg.sanitizer.enabled = true;
    let mut resumed = Machine::restore_bytes(on_cfg, prog, &snap)
        .expect("observer-only config delta restores cleanly");
    assert_eq!(resumed.run(), baseline);
}

// ---------------------------------------------------------------------------
// Seeded protocol mutations: each caught with the right invariant ID.
// ---------------------------------------------------------------------------

#[test]
fn mutation_corrupt_dir_owner_caught_as_dir_agree() {
    let r = run(mutated_cfg(MutationKind::CorruptDirOwner, 8), PINGPONG);
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemDirAgree,
        "detail: {}",
        v.detail
    );
    assert_eq!(v.at, r.time);
}

#[test]
fn mutation_corrupt_grant_caught() {
    let r = run(mutated_cfg(MutationKind::CorruptGrant, 1), PINGPONG);
    let v = violation(&r);
    assert!(
        v.invariant == InvariantId::MemSwmr || v.invariant == InvariantId::MemDirAgree,
        "an S-grant upgraded to M must break SWMR or dir agreement, got {} ({})",
        v.invariant.as_str(),
        v.detail
    );
    assert_eq!(v.at, r.time);
}

#[test]
fn mutation_corrupt_fill_data_caught_as_data_value() {
    let r = run(mutated_cfg(MutationKind::CorruptFillData, 1), PINGPONG);
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemDataValue,
        "detail: {}",
        v.detail
    );
    assert_eq!(v.at, r.time);
}

#[test]
fn mutation_duplicate_resp_caught_as_msg_conserve() {
    let r = run(mutated_cfg(MutationKind::DuplicateResp, 1), PINGPONG);
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemMsgConserve,
        "detail: {}",
        v.detail
    );
    assert_eq!(v.at, r.time);
}

/// A silently dropped response wedges the run; the watchdog catches the
/// wedge, and the sanitizer's end-of-run conservation sweep upgrades the
/// symptom (deadlock) to its root cause (a lost message).
#[test]
fn mutation_drop_resp_upgraded_to_noc_conserve() {
    let mut cfg = mutated_cfg(MutationKind::DropResp, 1);
    cfg.fault.watchdog.period = Time::from_us(100);
    cfg.fault.watchdog.quanta = 4;
    let r = run(cfg, PINGPONG);
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::NocConserve,
        "detail: {}",
        v.detail
    );
    let d = r.diagnostic.as_ref().unwrap();
    assert!(
        d.reason.contains("watchdog") || !d.reason.is_empty(),
        "the original wedge context is preserved: {}",
        d.reason
    );
}

#[test]
fn mutation_skip_tlb_invalidate_caught_as_stale_shootdown() {
    let r = run(mutated_cfg(MutationKind::SkipTlbInvalidate, 1), SHOOTDOWN);
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::VmStaleShoot,
        "detail: {}",
        v.detail
    );
    assert_eq!(v.at, r.time);
}

#[test]
fn mutation_corrupt_tlb_entry_caught_as_tlb_pt() {
    let r = run(mutated_cfg(MutationKind::CorruptTlbEntry, 1), PINGPONG);
    let v = violation(&r);
    assert_eq!(v.invariant, InvariantId::VmTlbPt, "detail: {}", v.detail);
    assert_eq!(v.at, r.time);
}

/// Mutations are latched: exactly one firing per run, and the same seeded
/// mutation aborts at the same cycle every time (deterministic triage).
#[test]
fn mutations_replay_deterministically() {
    let a = run(mutated_cfg(MutationKind::CorruptFillData, 1), PINGPONG);
    let b = run(mutated_cfg(MutationKind::CorruptFillData, 1), PINGPONG);
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Per-protocol mutations (DESIGN §13): the snoop/update message classes only
// exist under their protocols, and each seeded corruption must be caught
// with the invariant that protocol's mask still enforces.
// ---------------------------------------------------------------------------

/// Message-passing shape: main's plain stores hit a line the spinning
/// worker holds shared, so Dragon emits `BusUpd` probes and the snooping
/// protocols emit invalidating snoops.
const MSG_PASS: &str = "global data: int;
     global flag: int;
     global done: int;
     global ready: int;
     fn worker(arg: int) -> int {
         atomic_add(&ready, 1);
         while (flag == 0) { }
         atomic_add(&done, data);
         return 0;
     }
     _CPU_ fn main() -> int {
         data = 0; flag = 0; done = 0; ready = 0;
         let t = spawn_cthread(worker, 0);
         if (t < 0) { return -1; }
         while (ready != 1) { }
         data = 42;
         flag = 1;
         while (done != 42) { }
         return done;
     }";

#[test]
fn mesi_snoop_mutation_clear_snoop_shared_caught_as_swmr() {
    let r = run(
        mutated_cfg_proto(MutationKind::CorruptSnoopShared, 1, ProtocolKind::MesiSnoop),
        PINGPONG,
    );
    let v = violation(&r);
    assert!(
        v.invariant == InvariantId::MemSwmr || v.invariant == InvariantId::MemDataValue,
        "an erased sharer report must leave a stale copy beside an exclusive \
         grant, got {} ({})",
        v.invariant.as_str(),
        v.detail
    );
    assert_eq!(v.at, r.time);
}

#[test]
fn dragon_mutation_corrupt_upd_value_caught_as_data_value() {
    let r = run(
        mutated_cfg_proto(MutationKind::CorruptUpdValue, 1, ProtocolKind::Dragon),
        MSG_PASS,
    );
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemDataValue,
        "detail: {}",
        v.detail
    );
    assert_eq!(v.at, r.time);
}

/// The classic mutations still fire — and map to the same invariants —
/// under the snooping protocols.
#[test]
fn mesi_snoop_mutation_corrupt_fill_data_caught_as_data_value() {
    let r = run(
        mutated_cfg_proto(MutationKind::CorruptFillData, 1, ProtocolKind::MesiSnoop),
        PINGPONG,
    );
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemDataValue,
        "detail: {}",
        v.detail
    );
}

#[test]
fn dragon_mutation_corrupt_fill_data_caught_as_data_value() {
    let r = run(
        mutated_cfg_proto(MutationKind::CorruptFillData, 1, ProtocolKind::Dragon),
        PINGPONG,
    );
    let v = violation(&r);
    assert_eq!(
        v.invariant,
        InvariantId::MemDataValue,
        "detail: {}",
        v.detail
    );
}

/// Protocol-specific mutation classes have no carrier messages under the
/// other protocols: arming them is inert and the run completes untouched.
#[test]
fn protocol_specific_mutations_are_inert_elsewhere() {
    let r = run(
        mutated_cfg_proto(MutationKind::CorruptSnoopShared, 1, ProtocolKind::Directory),
        PINGPONG,
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, 5);

    let r = run(
        mutated_cfg_proto(MutationKind::CorruptUpdValue, 1, ProtocolKind::MesiSnoop),
        PINGPONG,
    );
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, 5);
}

// ---------------------------------------------------------------------------
// Recovery-layer mutation (DESIGN §14): the solicitation-round resend path is
// itself under sanitizer coverage — corrupting a round's epoch bookkeeping so
// a still-pending probe is abandoned must be caught, and the mutation must be
// inert under the protocol without snoop rounds.
// ---------------------------------------------------------------------------

/// Seeded probe losses + the round timeout armed: the first timed-out snoop
/// round whose abandoned probe targets a live copy is the
/// `CorruptResendEpoch` mutation's carrier.
fn resend_mutated_cfg(protocol: ProtocolKind) -> SystemConfig {
    let mut cfg = mutated_cfg_proto(MutationKind::CorruptResendEpoch, 1, protocol);
    cfg.fault.seed = 11;
    cfg.fault.snoop_probe.drop_rate = 0.2;
    cfg.fault.dir.timeout = Some(Time::from_us(5));
    cfg.fault.dir.retry_budget = 32;
    cfg
}

#[test]
fn mesi_snoop_mutation_corrupt_resend_epoch_caught() {
    let r = run(resend_mutated_cfg(ProtocolKind::MesiSnoop), PINGPONG);
    let v = violation(&r);
    assert!(
        v.invariant == InvariantId::MemSwmr || v.invariant == InvariantId::MemDataValue,
        "an abandoned probe must leave a surviving copy beside an exclusive \
         grant (or a stale value), got {} ({})",
        v.invariant.as_str(),
        v.detail
    );
    assert_eq!(v.at, r.time);
}

/// Without the mutation, the identical fault plan *recovers*: the dropped
/// probe times out, the round resends, and the run completes — proving the
/// sanitizer catches the seeded recovery-layer bug, not the fault plan.
#[test]
fn probe_loss_without_mutation_recovers() {
    let mut cfg = resend_mutated_cfg(ProtocolKind::MesiSnoop);
    cfg.sanitizer.mutate = None;
    let r = run(cfg, PINGPONG);
    assert_eq!(
        r.outcome,
        Outcome::Completed,
        "diag: {:?}",
        r.diagnostic
    );
    assert_eq!(r.exit_code, 5);
    assert!(
        r.stats.get("fault.snoop_probe_drops") >= 1.0,
        "the seeded drop actually happened"
    );
    let timeouts = r.stats.get("mem.l2.0.dir_timeouts") + r.stats.get("mem.l2.1.dir_timeouts");
    assert!(timeouts >= 1.0, "recovery went through the timeout path");
}

#[test]
fn corrupt_resend_epoch_is_inert_under_directory() {
    // The directory protocol never runs snoop-collection rounds, so the
    // mutation's target class never occurs and the run completes untouched.
    let r = run(resend_mutated_cfg(ProtocolKind::Directory), PINGPONG);
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, 5);
}

// ---------------------------------------------------------------------------
// Triage: bisect-to-cycle + replay bundles.
// ---------------------------------------------------------------------------

#[test]
fn triage_bisects_and_bundle_replays() {
    let cfg = mutated_cfg(MutationKind::CorruptFillData, 1);
    let t =
        run_with_triage(&cfg, "tiny", PINGPONG, Time::from_us(20)).expect("triage run succeeds");
    assert_eq!(t.report.outcome, Outcome::InvariantViolation);
    let b = t.bundle.expect("abnormal outcome produces a bundle");
    assert_eq!(
        b.first_fail, t.report.time,
        "bisection converges to the manifest cycle"
    );
    assert_eq!(b.outcome, Outcome::InvariantViolation);
    assert_eq!(
        b.violation.as_ref().map(|v| v.invariant),
        Some(InvariantId::MemDataValue)
    );
    assert!(b.snapshot_at < b.first_fail);
    assert!(b.ring_total > 0, "uncore event ring captured");
    assert!(!b.ring.is_empty());

    // The bundle serializes and round-trips bit-exactly.
    let bytes = b.to_bytes();
    let b2 = ReplayBundle::from_bytes(&bytes).expect("bundle decodes");
    assert_eq!(b, b2);

    // And it deterministically reproduces the failure.
    let (replayed, reproduced) = replay_bundle(&b2).expect("replay runs");
    assert!(reproduced, "bundle must reproduce: {:?}", replayed.outcome);
    assert_eq!(replayed.time, b.first_fail);
}

#[test]
fn triage_on_healthy_run_yields_no_bundle() {
    let cfg = SystemConfig::tiny();
    let t = run_with_triage(&cfg, "tiny", PINGPONG, Time::from_us(50)).unwrap();
    assert_eq!(t.report.outcome, Outcome::Completed);
    assert!(t.bundle.is_none());
}

/// Corrupt bundle bytes surface as typed errors, never panics.
#[test]
fn bundle_decode_rejects_corruption() {
    let cfg = mutated_cfg(MutationKind::CorruptFillData, 1);
    let t = run_with_triage(&cfg, "tiny", PINGPONG, Time::from_us(20)).unwrap();
    let bytes = t.bundle.unwrap().to_bytes();
    assert!(ReplayBundle::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xff; // magic
    assert!(ReplayBundle::from_bytes(&flipped).is_err());
    let mut vflip = bytes.clone();
    vflip[8] ^= 0xff; // version word
    assert!(ReplayBundle::from_bytes(&vflip).is_err());
}
