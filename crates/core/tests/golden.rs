//! Golden determinism tests: full-system runs whose complete `RunReport`
//! (timing, event count, printed output, and every counter) is pinned to a
//! checked-in snapshot.
//!
//! These goldens were blessed *before* the hot-path data-structure swaps
//! (calendar event queue, FxHash block maps, interned stats) and guard the
//! bit-for-bit determinism claim: an internal container may change, but the
//! simulated machine must not. To re-bless after an intentional model
//! change, run:
//!
//! ```text
//! CCSVM_BLESS=1 cargo test -p ccsvm --test golden
//! ```
//!
//! and commit the rewritten files under `tests/goldens/`.
//!
//! With `CCSVM_SANITIZE=1` the same runs execute with the coherence
//! sanitizer enabled (DESIGN §9). The sanitizer is a pure observer, so the
//! snapshots must *still* match the blessed goldens byte-for-byte — CI runs
//! both modes to pin that claim. If a sanitized golden run aborts, a triage
//! replay bundle is written to `bundles/` (uploaded as a CI artifact) so
//! the failure can be reproduced locally with `bench --bin replay`.

use std::fmt::Write as _;
use std::path::PathBuf;

use ccsvm::{Machine, Outcome, ProtocolKind, SystemConfig};

fn sanitize_mode() -> bool {
    std::env::var("CCSVM_SANITIZE").is_ok()
}

/// `CCSVM_PROTOCOL={directory,mesi-snoop,dragon}` selects the coherence
/// protocol the golden runs under. Non-default protocols pin their own
/// golden files (`cpu_only.mesi-snoop.txt`, …); the directory files are the
/// original, never-re-blessed seed goldens.
fn protocol_mode() -> ProtocolKind {
    match std::env::var("CCSVM_PROTOCOL") {
        Ok(s) => ProtocolKind::parse(&s)
            .unwrap_or_else(|| panic!("unknown CCSVM_PROTOCOL '{s}' (directory|mesi-snoop|dragon)")),
        Err(_) => ProtocolKind::Directory,
    }
}

/// On a sanitized golden failure, capture a replay bundle for the CI
/// artifact before panicking.
fn capture_bundle(src: &str, cfg: &SystemConfig, context: &str) {
    let out_dir = std::path::Path::new("bundles");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return;
    }
    match ccsvm::run_with_triage(cfg, "paper_default", src, ccsvm::Time::from_us(100)) {
        Ok(t) => match t.bundle {
            Some(b) => {
                let path = out_dir.join(format!("golden-{context}.ccbundle"));
                match b.write(&path) {
                    Ok(()) => eprintln!(
                        "replay bundle written to {} (reproduce with `cargo run -p \
                         ccsvm-bench --bin replay -- {}`)",
                        path.display(),
                        path.display()
                    ),
                    Err(e) => eprintln!("cannot write bundle: {e}"),
                }
            }
            None => eprintln!("triage re-run completed cleanly; no bundle to capture"),
        },
        Err(e) => eprintln!("triage re-run failed: {e}"),
    }
}

/// Renders the parts of a run that must be bit-for-bit stable.
fn snapshot_at(src: &str, sim_threads: usize) -> String {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let mut cfg = SystemConfig::paper_default();
    cfg.sim_threads = sim_threads;
    cfg.sanitizer.enabled = sanitize_mode();
    cfg.protocol = protocol_mode();
    let mut m = Machine::new(cfg.clone(), prog);
    let r = m.run();
    if r.outcome != Outcome::Completed && cfg.sanitizer.enabled {
        capture_bundle(src, &cfg, &format!("t{sim_threads}"));
    }
    assert_eq!(
        r.outcome,
        Outcome::Completed,
        "golden workload must complete (diag: {:?})",
        r.diagnostic
    );
    let mut out = String::new();
    writeln!(out, "time_ps: {}", r.time.as_ps()).unwrap();
    writeln!(out, "exit_code: {}", r.exit_code).unwrap();
    writeln!(out, "instructions: {}", r.instructions).unwrap();
    writeln!(out, "events: {}", r.events).unwrap();
    writeln!(out, "dram_accesses: {}", r.dram_accesses).unwrap();
    writeln!(out, "printed:").unwrap();
    for (v, at) in r.printed.iter().zip(&r.printed_at) {
        writeln!(out, "  {v} @ {}ps", at.as_ps()).unwrap();
    }
    writeln!(out, "stats:").unwrap();
    for (k, v) in &r.stats {
        // Full precision: format the raw bits so even sub-ulp drift fails.
        writeln!(out, "  {k} = {v} [{:016x}]", v.to_bits()).unwrap();
    }
    out
}

fn check(name: &str, src: &str) {
    let got = snapshot_at(src, 1);
    // The fork-join executor (DESIGN §7) must reproduce the serial snapshot
    // byte-for-byte at every worker count.
    for sim_threads in [2, 4] {
        let par = snapshot_at(src, sim_threads);
        assert_eq!(
            par, got,
            "golden {name}: sim_threads={sim_threads} diverged from serial"
        );
    }
    let protocol = protocol_mode();
    let file = if protocol == ProtocolKind::Directory {
        name.to_string()
    } else {
        name.replace(".txt", &format!(".{protocol}.txt"))
    };
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "goldens", &file]
        .iter()
        .collect();
    if std::env::var("CCSVM_BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with CCSVM_BLESS=1)",
            path.display()
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "golden {name} diverged at line {}:\n  got:  {g}\n  want: {w}",
                    i + 1
                );
            }
        }
        panic!(
            "golden {name} diverged in length: got {} lines, want {}",
            got.lines().count(),
            want.lines().count()
        );
    }
}

/// CPU-only: interpreter loop, demand paging, L1/L2/DRAM, no offload.
#[test]
fn golden_cpu_only() {
    check(
        "cpu_only.txt",
        &ccsvm_workloads::matmul::cpu_source(&ccsvm_workloads::matmul::MatmulParams::new(12, 42)),
    );
}

/// CPU + MTTOP: kernel launch, TLB shootdowns, directory coherence between
/// heterogeneous cores, wait/signal synchronization.
#[test]
fn golden_cpu_mttop() {
    check(
        "cpu_mttop.txt",
        &ccsvm_workloads::matmul::xthreads_source(&ccsvm_workloads::matmul::MatmulParams::new(
            16, 42,
        )),
    );
}
