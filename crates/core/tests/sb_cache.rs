//! Differential suite for the decoded-superblock cache (DESIGN §11): the
//! cache is host-side memoization only, so every observable of a run —
//! outcome, exit code, stats, simulated timings, printed output, event
//! count, even the snapshot image bytes — must be bit-identical with the
//! cache enabled and disabled, at every `sim_threads` value, fault-free and
//! under an active fault plan, and across checkpoint/restore in either
//! direction (checkpoint with the cache on, restore with it off, and vice
//! versa — images are portable across the host knob).

use ccsvm::{Machine, Outcome, RunReport, SystemConfig, Time};
use ccsvm_isa::Program;

fn compile(src: &str) -> Program {
    ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"))
}

/// The CPU+MTTOP workload shape the fault and snapshot suites use: real
/// NoC/L2/DRAM traffic, MTTOP offload, and straight-line ALU bodies long
/// enough for the decoder to form multi-op superblocks.
fn vecadd_src(n: u64) -> String {
    format!(
        "struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] * 5 + a->v2[tid] * 3 + tid;
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let n = {n};
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(n * 8);
             a->v2 = malloc(n * 8);
             a->sum = malloc(n * 8);
             a->done = malloc(n * 8);
             for (let i = 0; i < n; i = i + 1) {{
                 a->v1[i] = i * 3;
                 a->v2[i] = i + 7;
                 a->done[i] = 0;
             }}
             let err = xt_create_mthread(add, a as int, 0, n - 1);
             if (err != 0) {{ return -1; }}
             xt_wait(a->done, 0, n - 1);
             let total = 0;
             for (let i = 0; i < n; i = i + 1) {{ total = total + a->sum[i]; }}
             return total;
         }}"
    )
}

/// The fault matrix of `faults.rs`: NoC drops + correctable DRAM ECC flips +
/// transient TLB-walk failures, seeded.
fn faulty_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    cfg.fault.seed = seed;
    cfg.fault.noc.drop_rate = 0.02;
    cfg.fault.dram.single_bit_rate = 0.2;
    cfg.fault.tlb.transient_rate = 0.02;
    cfg
}

fn run_with(mut cfg: SystemConfig, src: &str, sb_cache: bool, sim_threads: usize) -> RunReport {
    cfg.sb_cache = sb_cache;
    cfg.sim_threads = sim_threads;
    Machine::new(cfg, compile(src)).run()
}

/// Runs `src` with the cache on and off at `sim_threads ∈ {1, 2, 4}`,
/// asserting every report equals the serial cache-off reference, and returns
/// that reference.
fn differential(cfg: &SystemConfig, src: &str, label: &str) -> RunReport {
    let reference = run_with(cfg.clone(), src, false, 1);
    for sim_threads in [1, 2, 4] {
        for sb_cache in [false, true] {
            let r = run_with(cfg.clone(), src, sb_cache, sim_threads);
            assert_eq!(
                reference, r,
                "{label}: sb_cache={sb_cache} sim_threads={sim_threads} diverged \
                 from the serial cache-off reference"
            );
        }
    }
    reference
}

#[test]
fn cache_toggle_is_invisible_across_sim_threads() {
    let r = differential(&SystemConfig::tiny(), &vecadd_src(64), "vecadd_n64");
    assert_eq!(r.outcome, Outcome::Completed);
    assert_eq!(r.exit_code, (0..64).map(|i| i * 3 * 5 + (i + 7) * 3 + i).sum::<u64>());
}

#[test]
fn cache_toggle_is_invisible_on_paper_default_machine() {
    // Full-size machine (10 MTTOP cores): the configuration where warps run
    // lockstep and the batched-sprint fast path actually fires.
    let src = ccsvm_workloads::matmul::xthreads_source(
        &ccsvm_workloads::matmul::MatmulParams::new(16, 42),
    );
    let r = differential(&SystemConfig::paper_default(), &src, "matmul_n16");
    assert_eq!(r.outcome, Outcome::Completed);
}

#[test]
fn cache_toggle_is_invisible_under_fault_plan() {
    for seed in [3, 7] {
        let r = differential(&faulty_cfg(seed), &vecadd_src(32), &format!("faulty seed {seed}"));
        assert_eq!(r.outcome, Outcome::Completed, "seed {seed}");
        assert!(
            r.stats.get("noc.retransmissions") > 0.0,
            "seed {seed}: NoC faults must actually fire in the compared runs"
        );
    }
}

#[test]
fn cache_actually_hits_in_the_compared_runs() {
    // Guard against the differential being vacuous: the cache-on run must
    // decode superblocks and then serve issues from them.
    let mut cfg = SystemConfig::tiny();
    cfg.sb_cache = true;
    let mut m = Machine::new(cfg, compile(&vecadd_src(64)));
    let r = m.run();
    assert_eq!(r.outcome, Outcome::Completed);
    let sb = m.sb_stats();
    assert!(sb.hits > 0, "no superblock hits — the fast path never engaged");
    assert!(sb.decoded_ops > 0, "nothing was decoded into superblocks");

    // And the ablated run must report an idle cache.
    let mut cfg = SystemConfig::tiny();
    cfg.sb_cache = false;
    let mut m = Machine::new(cfg, compile(&vecadd_src(64)));
    m.run();
    assert_eq!(m.sb_stats().hits, 0, "--no-sb-cache still served hits");
}

/// Pause a fresh machine (cache set per `checkpoint_on`) at simulated time
/// `at`, then restore the image into a machine with the opposite setting and
/// finish the run.
fn checkpoint_cross_restore(
    cfg: &SystemConfig,
    src: &str,
    at: Time,
    checkpoint_on: bool,
) -> RunReport {
    let mut ccfg = cfg.clone();
    ccfg.sb_cache = checkpoint_on;
    let mut m = Machine::new(ccfg, compile(src));
    assert!(
        m.run_until(at).is_none(),
        "run finished before the checkpoint cycle {at} — pick an earlier one"
    );
    let bytes = m.checkpoint_bytes();
    let mut rcfg = cfg.clone();
    rcfg.sb_cache = !checkpoint_on;
    let mut restored =
        Machine::restore_bytes(rcfg, compile(src), &bytes).expect("restore must succeed");
    restored.run()
}

#[test]
fn checkpoint_restore_crosses_the_cache_boundary() {
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(32);
    let uninterrupted = run_with(cfg.clone(), &src, false, 1);
    assert_eq!(uninterrupted.outcome, Outcome::Completed);
    // Early and mid-offload checkpoints, in both toggle directions.
    for den in [16, 2] {
        let at = Time::from_ps(uninterrupted.time.as_ps() / den);
        for checkpoint_on in [false, true] {
            let resumed = checkpoint_cross_restore(&cfg, &src, at, checkpoint_on);
            assert_eq!(
                resumed, uninterrupted,
                "checkpoint at {at} with sb_cache={checkpoint_on} restored with \
                 the opposite setting diverged"
            );
        }
    }
}

#[test]
fn snapshot_bytes_are_identical_on_vs_off() {
    // The cache is excluded from the image entirely, so pausing cache-on and
    // cache-off runs at the same cycle must produce byte-identical snapshots
    // — this is what makes images portable across the `--no-sb-cache` knob.
    let cfg = SystemConfig::tiny();
    let src = vecadd_src(32);
    let done = run_with(cfg.clone(), &src, false, 1);
    let at = Time::from_ps(done.time.as_ps() / 2);
    let mut imgs = Vec::new();
    for sb_cache in [false, true] {
        let mut c = cfg.clone();
        c.sb_cache = sb_cache;
        let mut m = Machine::new(c, compile(&src));
        assert!(m.run_until(at).is_none());
        imgs.push(m.checkpoint_bytes());
    }
    assert_eq!(
        imgs[0], imgs[1],
        "snapshot bytes differ between cache-off and cache-on runs"
    );
}
