//! Versioned, length-prefixed binary snapshots for deterministic
//! checkpoint/restore.
//!
//! Every stateful simulator component implements [`Snapshot`]: `save` appends
//! the component's mutable state to a [`SnapWriter`], `load` reads it back
//! from a [`SnapReader`] into an already-constructed component. Construction
//! and configuration are *not* part of a snapshot — a restore first rebuilds
//! the machine from the same `SystemConfig` + program, then loads only the
//! state that evolves during a run. That split keeps the format small and
//! makes "restore under a different config" a detectable error instead of
//! silent corruption.
//!
//! The format is written by hand (no serde): little-endian fixed-width
//! integers, `f64` as IEEE-754 bits, byte strings length-prefixed with a
//! `u64`, and named length-prefixed sections so a reader can verify it
//! consumed exactly what the writer produced. A file starts with:
//!
//! ```text
//! magic    [u8; 8]   b"CCSVSNAP"
//! schema   u32       SCHEMA_VERSION at write time
//! config   u64       FNV-1a hash of the normalized SystemConfig
//! ```
//!
//! Any mismatch surfaces as a typed [`SnapError`]; `load` implementations
//! never panic on malformed input.
//!
//! # Examples
//!
//! ```
//! use ccsvm_snap::{SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! let s = w.begin_section("demo");
//! w.put_u64(7);
//! w.put_str("hello");
//! w.end_section(s);
//! let bytes = w.into_vec();
//!
//! let mut r = SnapReader::new(&bytes);
//! let end = r.begin_section("demo").unwrap();
//! assert_eq!(r.get_u64().unwrap(), 7);
//! assert_eq!(r.get_str().unwrap(), "hello");
//! r.end_section(end).unwrap();
//! ```

pub mod journal;

use std::fmt;

/// File magic: identifies a ccsvm snapshot.
pub const MAGIC: [u8; 8] = *b"CCSVSNAP";

/// Schema version of the snapshot format. Bump on ANY change to what any
/// component serializes, and document the change in DESIGN.md §8 (CI greps
/// for this).
pub const SCHEMA_VERSION: u32 = 4;

/// Typed snapshot failure. Restoring under a mismatched config or schema, or
/// from a truncated/corrupt file, yields one of these — never a panic and
/// never a silently wrong machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// Underlying file I/O failed (message from `std::io::Error`).
    Io(String),
    /// The file does not start with [`MAGIC`]; not a snapshot.
    BadMagic,
    /// The snapshot was written by a different format version.
    SchemaMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this binary understands ([`SCHEMA_VERSION`]).
        expected: u32,
    },
    /// The snapshot was taken under a different `SystemConfig`.
    ConfigMismatch {
        /// Config hash found in the file header.
        found: u64,
        /// Config hash of the machine being restored into.
        expected: u64,
    },
    /// A [`SnapError::ConfigMismatch`] whose root cause is known: the image
    /// was taken under a different coherence protocol than the machine it is
    /// being restored into. Surfaced by name so the fix ("pass the matching
    /// `--protocol`") is obvious without comparing raw hashes.
    ProtocolMismatch {
        /// Protocol name recorded in the image.
        found: String,
        /// Protocol name of the machine being restored into.
        expected: String,
    },
    /// The data ended before the expected field.
    Truncated {
        /// What the reader was trying to decode.
        what: &'static str,
    },
    /// The data decoded but violates a format invariant.
    Corrupt {
        /// Description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            SnapError::BadMagic => write!(f, "not a ccsvm snapshot (bad magic)"),
            SnapError::SchemaMismatch { found, expected } => write!(
                f,
                "snapshot schema v{found} does not match this binary's v{expected}"
            ),
            SnapError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was taken under a different SystemConfig \
                 (hash {found:#018x}, machine has {expected:#018x})"
            ),
            SnapError::ProtocolMismatch { found, expected } => write!(
                f,
                "snapshot was taken under the '{found}' coherence protocol \
                 but this machine is configured for '{expected}' \
                 (config hashes differ; restore with --protocol {found})"
            ),
            SnapError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapError::Corrupt { what } => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash; used to fingerprint the normalized `SystemConfig`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian snapshot writer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// An empty writer reusing `buf`'s allocation (cleared first). Hot
    /// callers that snapshot repeatedly — e.g. the speculative epoch
    /// executor's per-member undo capture — round-trip one buffer through
    /// `reusing`/[`SnapWriter::into_vec`] instead of reallocating.
    pub fn reusing(mut buf: Vec<u8>) -> SnapWriter {
        buf.clear();
        SnapWriter { buf }
    }

    /// Writes the snapshot header: magic, schema version, config hash.
    pub fn put_header(&mut self, config_hash: u64) {
        self.buf.extend_from_slice(&MAGIC);
        self.put_u32(SCHEMA_VERSION);
        self.put_u64(config_hash);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Opens a named, length-prefixed section; returns a marker for
    /// [`SnapWriter::end_section`]. Sections let the reader verify it
    /// consumed exactly the bytes the writer produced.
    #[must_use]
    pub fn begin_section(&mut self, name: &str) -> usize {
        self.put_str(name);
        let mark = self.buf.len();
        self.put_u64(0); // placeholder, patched by end_section
        mark
    }

    /// Closes the section opened at `mark`, patching its byte length.
    pub fn end_section(&mut self, mark: usize) {
        let len = (self.buf.len() - mark - 8) as u64;
        self.buf[mark..mark + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// The serialized bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Checked little-endian snapshot reader over a byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> SnapReader<'a> {
        SnapReader { data, pos: 0 }
    }

    /// Validates the header written by [`SnapWriter::put_header`] against
    /// this binary's schema and the restoring machine's config hash.
    pub fn check_header(&mut self, expected_config_hash: u64) -> Result<(), SnapError> {
        let magic = self.take(8, "magic")?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let schema = self.get_u32()?;
        if schema != SCHEMA_VERSION {
            return Err(SnapError::SchemaMismatch {
                found: schema,
                expected: SCHEMA_VERSION,
            });
        }
        let config = self.get_u64()?;
        if config != expected_config_hash {
            return Err(SnapError::ConfigMismatch {
                found: config,
                expected: expected_config_hash,
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        if self.data.len() - self.pos < n {
            return Err(SnapError::Truncated { what });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written with [`SnapWriter::put_usize`]; errors if the
    /// value does not fit the host's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::Corrupt {
            what: "usize value exceeds host width".to_string(),
        })
    }

    /// Reads an element count that will drive a pre-sized allocation.
    /// Validates the count against the bytes actually remaining in the
    /// image (each element needs at least `min_elem_bytes` to encode), so a
    /// corrupt length field yields [`SnapError::Corrupt`] instead of an
    /// attempt to allocate terabytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the count cannot possibly be satisfied
    /// by the remaining data; [`SnapError::Truncated`] when the count field
    /// itself is cut off.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        let elem = min_elem_bytes.max(1);
        if n > self.remaining() / elem {
            return Err(SnapError::Corrupt {
                what: format!(
                    "element count {n} x >= {elem} B exceeds the {} bytes remaining",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is [`SnapError::Corrupt`].
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt {
                what: format!("bool byte {other:#04x}"),
            }),
        }
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| SnapError::Corrupt {
            what: format!("byte string length {len} exceeds host width"),
        })?;
        self.take(len, "byte string body")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| SnapError::Corrupt {
            what: "string is not valid UTF-8".to_string(),
        })
    }

    /// Reads a fixed-size byte array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], SnapError> {
        let b = self.take(N, "byte array")?;
        Ok(b.try_into().expect("length checked"))
    }

    /// Copies a fixed-size run of raw bytes (written via `put_raw`).
    pub fn get_raw(&mut self, out: &mut [u8]) -> Result<(), SnapError> {
        let b = self.take(out.len(), "raw bytes")?;
        out.copy_from_slice(b);
        Ok(())
    }

    /// Opens the named section, verifying the name matches; returns the
    /// byte offset where the section must end.
    pub fn begin_section(&mut self, name: &str) -> Result<usize, SnapError> {
        let found = self.get_str()?;
        if found != name {
            return Err(SnapError::Corrupt {
                what: format!("expected section `{name}`, found `{found}`"),
            });
        }
        let len = self.get_usize()?;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.data.len());
        end.ok_or(SnapError::Truncated {
            what: "section body",
        })
    }

    /// Closes a section, verifying the reader consumed exactly its bytes.
    pub fn end_section(&mut self, end: usize) -> Result<(), SnapError> {
        if self.pos != end {
            return Err(SnapError::Corrupt {
                what: format!(
                    "section length mismatch: reader at byte {}, section ends at {end}",
                    self.pos
                ),
            });
        }
        Ok(())
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl SnapWriter {
    /// Appends raw bytes with no length prefix (pair with
    /// [`SnapReader::get_raw`] / [`SnapReader::get_array`]).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A component whose mutable run-state can round-trip through a snapshot.
///
/// `save`/`load` cover only state that evolves during a run; configuration
/// and construction-time wiring are re-derived by rebuilding the component
/// from the same config before calling `load`.
pub trait Snapshot {
    /// Appends this component's state to the writer.
    fn save(&self, w: &mut SnapWriter);
    /// Restores this component's state from the reader. On error the
    /// component may be partially loaded and must be discarded.
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Writes snapshot bytes to `path` atomically: the bytes land in a
/// same-directory temp file which is fsynced and renamed over `path`, so a
/// crash mid-write can never leave a torn file under the final name — a
/// reader sees either the old complete image or the new one. (Header and
/// section checks would *detect* a torn image, but the sweep orchestrator
/// resumes from "the newest valid checkpoint", which must never be a
/// half-written one.)
pub fn write_file(path: &std::path::Path, bytes: &[u8]) -> Result<(), SnapError> {
    use std::io::Write;
    let io = |e: &std::io::Error| SnapError::Io(format!("{}: {e}", path.display()));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io(&e))?;
        f.write_all(bytes).map_err(|e| io(&e))?;
        f.sync_data().map_err(|e| io(&e))?;
        std::fs::rename(&tmp, path).map_err(|e| io(&e))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads snapshot bytes from `path`.
pub fn read_file(path: &std::path::Path) -> Result<Vec<u8>, SnapError> {
    std::fs::read(path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_usize(12345);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("héllo");
        w.put_raw(&[9; 4]);
        let bytes = w.into_vec();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_array::<4>().unwrap(), [9; 4]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f64_bit_exact() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.0 / 3.0] {
            let mut w = SnapWriter::new();
            w.put_f64(v);
            let b = w.into_vec();
            let got = SnapReader::new(&b).get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = SnapReader::new(&[1, 2]);
        assert_eq!(r.get_u64(), Err(SnapError::Truncated { what: "u64" }));
        let mut w = SnapWriter::new();
        w.put_u64(100); // claims a 100-byte string with no body
        let bytes = w.into_vec();
        assert!(matches!(
            SnapReader::new(&bytes).get_bytes(),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        assert!(matches!(
            SnapReader::new(&[7]).get_bool(),
            Err(SnapError::Corrupt { .. })
        ));
    }

    #[test]
    fn sections_verify_name_and_length() {
        let mut w = SnapWriter::new();
        let s = w.begin_section("cpu");
        w.put_u64(3);
        w.end_section(s);
        let bytes = w.into_vec();

        // Happy path.
        let mut r = SnapReader::new(&bytes);
        let end = r.begin_section("cpu").unwrap();
        assert_eq!(r.get_u64().unwrap(), 3);
        r.end_section(end).unwrap();

        // Wrong name.
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.begin_section("mem"),
            Err(SnapError::Corrupt { .. })
        ));

        // Under-consumed section.
        let mut r = SnapReader::new(&bytes);
        let end = r.begin_section("cpu").unwrap();
        assert!(matches!(r.end_section(end), Err(SnapError::Corrupt { .. })));
    }

    #[test]
    fn header_mismatches_are_typed() {
        let mut w = SnapWriter::new();
        w.put_header(0x1234);
        let good = w.into_vec();
        assert!(SnapReader::new(&good).check_header(0x1234).is_ok());
        assert_eq!(
            SnapReader::new(&good).check_header(0x9999),
            Err(SnapError::ConfigMismatch {
                found: 0x1234,
                expected: 0x9999
            })
        );

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SnapReader::new(&bad_magic).check_header(0x1234),
            Err(SnapError::BadMagic)
        );

        let mut bad_schema = good.clone();
        bad_schema[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        assert_eq!(
            SnapReader::new(&bad_schema).check_header(0x1234),
            Err(SnapError::SchemaMismatch {
                found: SCHEMA_VERSION + 1,
                expected: SCHEMA_VERSION
            })
        );

        assert!(matches!(
            SnapReader::new(&good[..4]).check_header(0x1234),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn fnv1a_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"config-a"), fnv1a(b"config-b"));
    }
}
