//! Append-only, crash-tolerant record journals (write-ahead logs).
//!
//! A journal is the durable spine of a long-running harness: every state
//! transition is appended as one framed record, and after a crash the
//! surviving prefix reconstructs where work stood. The format follows the
//! snapshot codec's conventions — magic/version header, little-endian
//! fixed-width integers, typed [`SnapError`]s, no panics on malformed
//! input — with one extra property the snapshot format does not need:
//! **torn-tail tolerance**. A process can die mid-append, so the final
//! record of a journal may be incomplete; replay detects that and drops
//! the torn tail instead of erroring, because an unfinished append is the
//! expected crash signature, not corruption.
//!
//! Layout:
//!
//! ```text
//! magic    [u8; 8]   b"CCSVJRNL"
//! version  u32       JOURNAL_VERSION
//! tag      u64       caller-defined stream id (e.g. a sweep-spec hash)
//! record*  :=  len   u32   payload byte count
//!              sum   u64   FNV-1a of the payload
//!              body  [u8; len]
//! ```
//!
//! The checksum distinguishes a *torn* record (short frame at EOF —
//! dropped) from a *corrupt* one (full frame whose bytes do not hash to
//! `sum` — a typed [`SnapError::Corrupt`], never silently trusted).
//!
//! # Examples
//!
//! ```no_run
//! use ccsvm_snap::journal::{JournalWriter, replay};
//!
//! let path = std::path::Path::new("sweep.journal");
//! let mut w = JournalWriter::create(path, 0xfeed).unwrap();
//! w.append(b"job planned").unwrap();
//! drop(w);
//!
//! let j = replay(path).unwrap();
//! assert_eq!(j.tag, 0xfeed);
//! assert_eq!(j.records[0], b"job planned");
//! assert!(!j.torn);
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::{fnv1a, SnapError};

/// File magic identifying a ccsvm journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"CCSVJRNL";

/// Journal format version. Bump on any framing change.
pub const JOURNAL_VERSION: u32 = 1;

/// Bytes of the fixed file header (magic + version + tag).
const HEADER_BYTES: usize = 8 + 4 + 8;

/// Bytes of a record frame before its payload (len + checksum).
const FRAME_BYTES: usize = 4 + 8;

/// An open journal being appended to.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    appended: u64,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file) and
    /// writes its header.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path, tag: u64) -> Result<JournalWriter, SnapError> {
        let mut file = File::create(path).map_err(|e| io_err(path, &e))?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&tag.to_le_bytes());
        file.write_all(&header).map_err(|e| io_err(path, &e))?;
        file.sync_data().map_err(|e| io_err(path, &e))?;
        Ok(JournalWriter { file, appended: 0 })
    }

    /// Opens an existing journal for appending, after verifying its header
    /// matches `tag`. The caller is expected to [`replay`] first; a torn
    /// tail left by a previous crash is truncated away here so new records
    /// never land after garbage.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`]s for a missing/unreadable file, bad magic or
    /// version, or a tag mismatch (the journal belongs to a different
    /// sweep).
    pub fn open_append(path: &Path, tag: u64) -> Result<JournalWriter, SnapError> {
        let replayed = replay(path)?;
        if replayed.tag != tag {
            return Err(SnapError::ConfigMismatch {
                found: replayed.tag,
                expected: tag,
            });
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        // Drop any torn tail so the next append starts on a clean frame
        // boundary.
        file.set_len(replayed.valid_bytes)
            .map_err(|e| io_err(path, &e))?;
        Ok(JournalWriter {
            file,
            appended: replayed.records.len() as u64,
        })
    }

    /// Appends one record and syncs it to disk. The write is framed
    /// (length + checksum + payload) in a single `write_all`, so a crash
    /// leaves at worst one torn final record, which replay drops.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] on write failure; [`SnapError::Corrupt`] when the
    /// payload exceeds `u32::MAX` bytes (a caller bug, surfaced typed).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), SnapError> {
        let len = u32::try_from(payload.len()).map_err(|_| SnapError::Corrupt {
            what: format!(
                "journal record of {} bytes exceeds u32 framing",
                payload.len()
            ),
        })?;
        let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| SnapError::Io(format!("journal append: {e}")))?;
        self.file
            .sync_data()
            .map_err(|e| SnapError::Io(format!("journal sync: {e}")))?;
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this writer (excludes pre-existing ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// The surviving contents of a journal after [`replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replayed {
    /// The header's caller-defined stream id.
    pub tag: u64,
    /// Every intact record, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn final record was dropped (the crash signature).
    pub torn: bool,
    /// Byte offset of the end of the last intact record — the length to
    /// truncate to before appending again.
    pub valid_bytes: u64,
}

/// Reads a journal back, dropping a torn final record.
///
/// Decoding is strict everywhere except the tail: a header that does not
/// parse, or a complete record whose checksum does not match its payload,
/// is a typed error — the journal cannot be trusted and the caller must
/// quarantine it. Only an *incomplete* final frame (the file ends mid-append)
/// is forgiven, reported via [`Replayed::torn`].
///
/// # Errors
///
/// [`SnapError::Io`] when the file cannot be read, [`SnapError::BadMagic`] /
/// [`SnapError::SchemaMismatch`] / [`SnapError::Truncated`] for a bad
/// header, [`SnapError::Corrupt`] for a checksum mismatch on a complete
/// record.
pub fn replay(path: &Path) -> Result<Replayed, SnapError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, &e))?;
    replay_bytes(&bytes)
}

/// [`replay`] over an in-memory image (exact same semantics).
///
/// # Errors
///
/// As [`replay`], minus the I/O.
pub fn replay_bytes(bytes: &[u8]) -> Result<Replayed, SnapError> {
    if bytes.len() < HEADER_BYTES {
        return Err(SnapError::Truncated {
            what: "journal header",
        });
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != JOURNAL_VERSION {
        return Err(SnapError::SchemaMismatch {
            found: version,
            expected: JOURNAL_VERSION,
        });
    }
    let tag = u64::from_le_bytes(bytes[12..HEADER_BYTES].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut pos = HEADER_BYTES;
    let mut torn = false;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_BYTES {
            torn = true; // frame header itself is cut off
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body_at = pos + FRAME_BYTES;
        if bytes.len() - body_at < len {
            torn = true; // payload cut off mid-append
            break;
        }
        let body = &bytes[body_at..body_at + len];
        if fnv1a(body) != sum {
            return Err(SnapError::Corrupt {
                what: format!(
                    "journal record {} (at byte {pos}) fails its checksum",
                    records.len()
                ),
            });
        }
        records.push(body.to_vec());
        pos = body_at + len;
    }
    Ok(Replayed {
        tag,
        records,
        torn,
        valid_bytes: pos as u64,
    })
}

fn io_err(path: &Path, e: &std::io::Error) -> SnapError {
    SnapError::Io(format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccsvm-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn sample() -> Vec<u8> {
        let path = temp_path("sample");
        let mut w = JournalWriter::create(&path, 42).unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(&[0xAB; 300]).unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    }

    #[test]
    fn round_trip_and_append_counts() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.append(b"a").unwrap();
        assert_eq!(w.appended(), 1);
        drop(w);

        let mut w = JournalWriter::open_append(&path, 7).unwrap();
        w.append(b"b").unwrap();
        drop(w);

        let j = replay(&path).unwrap();
        assert_eq!(j.tag, 7);
        assert_eq!(j.records, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(!j.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tag_mismatch_is_typed() {
        let path = temp_path("tag");
        JournalWriter::create(&path, 1).unwrap();
        assert!(matches!(
            JournalWriter::open_append(&path, 2),
            Err(SnapError::ConfigMismatch {
                found: 1,
                expected: 2
            })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_is_tolerated_or_typed() {
        let bytes = sample();
        let full = replay_bytes(&bytes).unwrap();
        assert_eq!(full.records.len(), 3);
        for cut in 0..bytes.len() {
            match replay_bytes(&bytes[..cut]) {
                Ok(j) => {
                    // A truncated journal may only lose records off the
                    // tail — the surviving prefix must match the original.
                    // (A cut landing exactly on a frame boundary reads as a
                    // clean, shorter journal — torn stays false there.)
                    assert!(j.records.len() <= full.records.len());
                    assert_eq!(j.records[..], full.records[..j.records.len()]);
                }
                Err(SnapError::Truncated { .. } | SnapError::BadMagic) => {} // header cut off: typed, never a panic
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn byte_flips_never_yield_wrong_records() {
        let bytes = sample();
        let full = replay_bytes(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            // A typed rejection is always acceptable; a flip may also
            // shrink the journal (length-field damage reads as a torn
            // tail) but every record it *does* return must be an
            // unmodified prefix record.
            if let Ok(j) = replay_bytes(&flipped) {
                for (k, rec) in j.records.iter().enumerate() {
                    assert_eq!(rec, &full.records[k], "flip at byte {i}");
                }
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path, 9).unwrap();
        w.append(b"keep").unwrap();
        w.append(b"torn-me").unwrap();
        drop(w);
        // Simulate a crash mid-append: chop into the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let j = replay(&path).unwrap();
        assert_eq!(j.records, vec![b"keep".to_vec()]);
        assert!(j.torn);

        let mut w = JournalWriter::open_append(&path, 9).unwrap();
        w.append(b"after").unwrap();
        drop(w);
        let j = replay(&path).unwrap();
        assert_eq!(j.records, vec![b"keep".to_vec(), b"after".to_vec()]);
        assert!(!j.torn);
        let _ = std::fs::remove_file(&path);
    }
}
